package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/enc"
	"repro/internal/obs/trace"
	"repro/internal/queue"
)

// StatusCanceled marks the synthetic reply a clerk writes into its own
// reply queue when a cancellation succeeds: the promise that the request
// will never execute (Section 7).
const StatusCanceled = "canceled"

// Errors returned by the clerk.
var (
	// ErrRIDMismatch reports a reply whose rid does not match the
	// outstanding request — a protocol violation.
	ErrRIDMismatch = errors.New("core: reply rid does not match outstanding request")
	// ErrNoOutstanding reports Receive with no request outstanding.
	ErrNoOutstanding = errors.New("core: no outstanding request")
	// ErrNotCancelable reports a cancel that lost the race with execution.
	ErrNotCancelable = errors.New("core: request no longer cancelable")
)

// ConnectInfo is what Connect returns (Section 3): the rid of the last
// request sent, the rid of the last reply received, and the last Receive's
// checkpoint — everything a recovering client needs to resynchronize.
type ConnectInfo struct {
	// SRID is the rid of the last Send, or "" if none.
	SRID string
	// RRID is the rid of the request whose reply was last received, or "".
	RRID string
	// Ckpt is the ckpt parameter of the last Receive, or nil.
	Ckpt []byte
	// LastSendEID is the element id of the last Send's request element
	// (for cancellation after recovery).
	LastSendEID queue.EID
	// Outstanding reports SRID != "" && SRID != RRID: a request is in
	// flight and the client should Receive next (fig. 2's branch).
	Outstanding bool
}

// receiveTag is the tag attached to every Receive's dequeue: the rid of
// the previous Send plus the client's checkpoint (Section 5: "tagging the
// Dequeue with ckpt and the rid of the previous Send").
func encodeReceiveTag(rid string, ckpt []byte) []byte {
	b := enc.NewBuffer(32)
	b.String(rid)
	b.BytesField(ckpt)
	return b.Bytes()
}

func decodeReceiveTag(tag []byte) (rid string, ckpt []byte) {
	if len(tag) == 0 {
		return "", nil
	}
	r := enc.NewReader(tag)
	rid = r.String()
	ckpt = r.BytesField()
	if r.Err() != nil {
		return "", nil
	}
	return rid, ckpt
}

// ClerkConfig configures a clerk.
type ClerkConfig struct {
	// ClientID uniquely names the client (the registrant name).
	ClientID string
	// RequestQueue is the server's input queue.
	RequestQueue string
	// ReplyQueue is this client's private reply queue; empty derives
	// "reply.<ClientID>" (Section 5's multiple-client extension).
	ReplyQueue string
	// ReceiveWait bounds each Receive's blocking wait; zero means a long
	// default (30s) per attempt — Receive retries until ctx ends.
	ReceiveWait time.Duration
	// OneWaySend makes Send use a one-way message, forgoing the stable-
	// storage acknowledgement (Section 5's optimisation).
	OneWaySend bool
	// FilterReplies makes every Receive dequeue with a header filter on
	// the outstanding rid, so foreign elements in the reply queue are
	// skipped instead of violating the protocol. Hedged clerks need it:
	// a duplicate reply from a clone whose cancellation lost the race may
	// sit in the reply queue until the background drain removes it, and
	// the next request's Receive must see past it (DESIGN.md §11).
	FilterReplies bool
	// Tracer, when enabled, stamps every Send with a fresh trace id and a
	// root "submit" span; the id travels with the element through the
	// queue, the server's transaction, and recovery replay. nil disables.
	Tracer *trace.Tracer
}

// Clerk is the client-side runtime library of fig. 5: it translates the
// Client Model's five operations into tagged queue operations. A Clerk is
// used by one client goroutine; it performs no transactions — the client
// is a fault-tolerant sequential program (Section 2).
type Clerk struct {
	qm  QMConn
	cfg ClerkConfig
	fsm *ClientFSM

	sRID        string       // rid of the outstanding (or last) Send
	lastSendEID queue.EID    // its element id, for cancellation
	lastTrace   trace.ID     // trace id stamped on the last Send (zero if untraced)
	lastSpan    trace.SpanID // its root span, for parenting retries
	resubmit    trace.Ref    // when valid, the next Send is a retry parented here
}

// NewClerk returns a disconnected clerk.
func NewClerk(qm QMConn, cfg ClerkConfig) *Clerk {
	if cfg.ReplyQueue == "" {
		cfg.ReplyQueue = "reply." + cfg.ClientID
	}
	if cfg.ReceiveWait <= 0 {
		cfg.ReceiveWait = 30 * time.Second
	}
	return &Clerk{qm: qm, cfg: cfg, fsm: NewClientFSM()}
}

// State exposes the client state machine's current state.
func (c *Clerk) State() ClientState { return c.fsm.State() }

// ReplyQueue returns the clerk's private reply queue name.
func (c *Clerk) ReplyQueue() string { return c.cfg.ReplyQueue }

// LastTrace returns the trace id stamped on the clerk's last Send, or the
// zero id when tracing was off. It identifies the request's span tree in
// the queue manager's trace ring.
func (c *Clerk) LastTrace() trace.ID { return c.lastTrace }

// Connect registers the client with the request and reply queues and
// returns the persistent rids and checkpoint of its previous life
// (Sections 3 and 5). It also drives the fig. 1 resynchronisation branch,
// leaving the clerk in Req-Sent or Reply-Recvd.
func (c *Clerk) Connect(ctx context.Context) (ConnectInfo, error) {
	if err := c.fsm.Fire(EvConnect); err != nil {
		return ConnectInfo{}, err
	}
	// The private reply queue is created on demand.
	if err := c.qm.CreateQueue(ctx, queue.QueueConfig{Name: c.cfg.ReplyQueue}); err != nil {
		c.fsm.state = StateDisconnected
		return ConnectInfo{}, fmt.Errorf("core: ensure reply queue: %w", err)
	}
	reqInfo, err := c.qm.Register(ctx, c.cfg.RequestQueue, c.cfg.ClientID, true)
	if err != nil {
		c.fsm.state = StateDisconnected
		return ConnectInfo{}, fmt.Errorf("core: register request queue: %w", err)
	}
	repInfo, err := c.qm.Register(ctx, c.cfg.ReplyQueue, c.cfg.ClientID, true)
	if err != nil {
		c.fsm.state = StateDisconnected
		return ConnectInfo{}, fmt.Errorf("core: register reply queue: %w", err)
	}
	var info ConnectInfo
	if reqInfo.HasLast && reqInfo.LastOp == queue.OpEnqueue {
		info.SRID = string(reqInfo.LastTag)
		info.LastSendEID = reqInfo.LastEID
	}
	if repInfo.HasLast && repInfo.LastOp == queue.OpDequeue {
		info.RRID, info.Ckpt = decodeReceiveTag(repInfo.LastTag)
	}
	info.Outstanding = info.SRID != "" && info.SRID != info.RRID
	c.sRID = info.SRID
	c.lastSendEID = info.LastSendEID
	if info.Outstanding {
		if err := c.fsm.Fire(EvResyncReqSent); err != nil {
			return ConnectInfo{}, err
		}
	} else {
		if err := c.fsm.Fire(EvResyncReplyRecvd); err != nil {
			return ConnectInfo{}, err
		}
	}
	return info, nil
}

// Disconnect deregisters the client from both queues. Registration state
// is destroyed, so only disconnect a client with no outstanding request.
func (c *Clerk) Disconnect(ctx context.Context) error {
	if err := c.fsm.Fire(EvDisconnect); err != nil {
		return err
	}
	if err := c.qm.Deregister(ctx, c.cfg.RequestQueue, c.cfg.ClientID); err != nil {
		return err
	}
	return c.qm.Deregister(ctx, c.cfg.ReplyQueue, c.cfg.ClientID)
}

// Send submits a request with the given rid. When Send returns (in the
// default RPC mode), the request and rid are stably stored (Section 3).
func (c *Clerk) Send(ctx context.Context, rid string, body []byte, headers map[string]string) error {
	return c.send(ctx, EvSend, rid, body, headers, nil, 0)
}

func (c *Clerk) send(ctx context.Context, ev ClientEvent, rid string, body []byte, headers map[string]string, scratch []byte, step int) error {
	if !c.fsm.Can(ev) {
		return fmt.Errorf("core: illegal %s in state %s", ev, c.fsm.State())
	}
	e := requestElement(rid, c.cfg.ClientID, c.cfg.ReplyQueue, body, headers, scratch, step)
	retry := c.resubmit
	c.resubmit = trace.Ref{}
	c.lastTrace = trace.ID{}
	c.lastSpan = 0
	if c.cfg.Tracer.Enabled() {
		// Root span of the request's causal tree: everything downstream —
		// the enqueue, the server's processing after (possibly) a crash
		// and replay, the reply — parents under it via the element. A
		// resubmission during clerk recovery reuses the original trace and
		// parents a "submit.retry" span under the first submit, so one
		// tree shows the whole masked failure.
		name := "submit"
		parent := trace.Ref{}
		if retry.Valid() {
			name = "submit.retry"
			parent = retry
			e.Trace = retry.Trace
		} else {
			e.Trace = trace.NewID()
			parent = trace.Ref{Trace: e.Trace}
		}
		sp, _ := c.cfg.Tracer.Begin(parent, name)
		sp.Annotate(trace.Str("rid", rid), trace.Str("client", c.cfg.ClientID))
		e.Span = sp.ID
		c.lastTrace = e.Trace
		c.lastSpan = sp.ID
		ctx = trace.With(ctx, sp.Ref())
		defer c.cfg.Tracer.Finish(&sp)
	}
	if c.cfg.OneWaySend {
		if err := c.qm.EnqueueOneWay(c.cfg.RequestQueue, e, c.cfg.ClientID, []byte(rid)); err != nil {
			return err
		}
		c.lastSendEID = 0 // unknown until reconnect
	} else {
		eid, err := c.qm.Enqueue(ctx, c.cfg.RequestQueue, e, c.cfg.ClientID, []byte(rid))
		if err != nil {
			return err
		}
		c.lastSendEID = eid
	}
	c.sRID = rid
	return c.fsm.Fire(ev)
}

// Receive returns the next reply, tagging the dequeue with the previous
// Send's rid and the caller's checkpoint. It blocks until the reply
// arrives or ctx ends. Intermediate output of an interactive request moves
// the clerk to Intermediate-I/O instead of Reply-Recvd.
func (c *Clerk) Receive(ctx context.Context, ckpt []byte) (Reply, error) {
	if !c.fsm.Can(EvReceive) {
		return Reply{}, fmt.Errorf("core: illegal Receive in state %s: %w", c.fsm.State(), ErrNoOutstanding)
	}
	tag := encodeReceiveTag(c.sRID, ckpt)
	var match map[string]string
	if c.cfg.FilterReplies {
		match = map[string]string{hdrRID: c.sRID}
	}
	for {
		el, err := c.qm.Dequeue(ctx, c.cfg.ReplyQueue, c.cfg.ClientID, tag, c.cfg.ReceiveWait, match)
		if errors.Is(err, queue.ErrEmpty) {
			if ctx.Err() != nil {
				return Reply{}, ctx.Err()
			}
			continue // keep waiting: the reply is coming (exactly-once)
		}
		if err != nil {
			return Reply{}, err
		}
		rep, err := parseReply(&el)
		if err != nil {
			return Reply{}, err
		}
		if rep.RID != c.sRID {
			return Reply{}, fmt.Errorf("%w: got %q, want %q", ErrRIDMismatch, rep.RID, c.sRID)
		}
		if rep.Intermediate {
			if err := c.fsm.Fire(EvReceiveIntermediate); err != nil {
				return Reply{}, err
			}
		} else {
			if err := c.fsm.Fire(EvReceive); err != nil {
				return Reply{}, err
			}
		}
		return rep, nil
	}
}

// Rereceive re-reads the reply returned by the client's last Receive, from
// the queue manager's stable registration copy (Section 3: receive-the-
// reply is idempotent because the QM retains the reply).
func (c *Clerk) Rereceive(ctx context.Context) (Reply, error) {
	if !c.fsm.Can(EvRereceive) {
		return Reply{}, fmt.Errorf("core: illegal Rereceive in state %s", c.fsm.State())
	}
	el, err := c.qm.ReadLast(ctx, c.cfg.ReplyQueue, c.cfg.ClientID)
	if err != nil {
		return Reply{}, err
	}
	rep, err := parseReply(&el)
	if err != nil {
		return Reply{}, err
	}
	if err := c.fsm.Fire(EvRereceive); err != nil {
		return Reply{}, err
	}
	return rep, nil
}

// SendIntermediate supplies intermediate input to an interactive request
// (fig. 7): a request for the next transaction of the pseudo-conversation
// (Section 8.2). The scratch pad echoes the conversation state from the
// last intermediate output.
func (c *Clerk) SendIntermediate(ctx context.Context, rid string, input []byte, scratch []byte, step int) error {
	return c.send(ctx, EvSendIntermediate, rid, input, map[string]string{hdrConv: "1"}, scratch, step)
}

// Transceive merges Send and Receive: it blocks the client until the reply
// arrives (Section 5).
func (c *Clerk) Transceive(ctx context.Context, rid string, body []byte, headers map[string]string, ckpt []byte) (Reply, error) {
	if err := c.Send(ctx, rid, body, headers); err != nil {
		return Reply{}, err
	}
	return c.Receive(ctx, ckpt)
}

// CancelLastRequest tries to cancel the outstanding request by killing its
// queue element (Section 7). On success the clerk writes a synthetic
// canceled-reply into its own reply queue — the durable promise that the
// request will never execute — and moves to Reply-Recvd. If the server
// already dequeued and committed (or the request element is unknown, as
// after a one-way Send), ErrNotCancelable is returned and the client must
// keep waiting for the real reply.
func (c *Clerk) CancelLastRequest(ctx context.Context) error {
	if c.fsm.State() != StateReqSent {
		return fmt.Errorf("core: illegal Cancel in state %s", c.fsm.State())
	}
	if c.lastSendEID == 0 {
		return fmt.Errorf("%w: request element unknown", ErrNotCancelable)
	}
	killed, err := c.qm.KillElement(ctx, c.lastSendEID)
	if err != nil {
		return err
	}
	if !killed {
		return ErrNotCancelable
	}
	// The synthetic reply keeps resynchronisation sound: after it is
	// received (now or after a crash), s-rid == r-rid again.
	rep := replyElement(c.sRID, StatusCanceled, nil, false, nil, 0)
	if _, err := c.qm.Enqueue(ctx, c.cfg.ReplyQueue, rep, "", nil); err != nil {
		return fmt.Errorf("core: cancel reply: %w", err)
	}
	rcv, err := c.Receive(ctx, nil)
	if err != nil {
		return err
	}
	if rcv.Status != StatusCanceled {
		return fmt.Errorf("core: unexpected reply %q while canceling", rcv.Status)
	}
	return nil
}
