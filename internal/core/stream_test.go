package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/queue"
)

func newStreamEnv(t *testing.T, instances int, workDelay time.Duration) *queue.Repository {
	t.Helper()
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < instances; i++ {
		srv, err := NewServer(ServerConfig{Repo: repo, Queue: "req", Name: fmt.Sprintf("s%d", i),
			Handler: func(rc *ReqCtx) ([]byte, error) {
				if workDelay > 0 {
					time.Sleep(workDelay)
				}
				return echoHandler(rc)
			}})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ctx)
	}
	return repo
}

func TestStreamBasicPipelining(t *testing.T) {
	repo := newStreamEnv(t, 3, 0)
	ctx := context.Background()
	sc := NewStreamClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "sc", RequestQueue: "req"}, 4)
	out, err := sc.Connect(ctx)
	if err != nil || len(out) != 0 {
		t.Fatalf("connect: %v %v", out, err)
	}
	// Fill the window.
	for i := 0; i < 4; i++ {
		if err := sc.Send(ctx, ridFor(i), []byte(fmt.Sprintf("w%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Send(ctx, ridFor(9), nil, nil); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("over-window send: %v", err)
	}
	got := map[string]bool{}
	if err := sc.Drain(ctx, func(rep Reply) { got[rep.RID] = true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("drained %d replies", len(got))
	}
	for i := 0; i < 4; i++ {
		if !got[ridFor(i)] {
			t.Fatalf("missing reply for %s", ridFor(i))
		}
		if n := execCount(t, repo, ridFor(i)); n != 1 {
			t.Fatalf("%s executed %d times", ridFor(i), n)
		}
	}
	if err := sc.Disconnect(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestStreamWindowRecoveryAfterCrash(t *testing.T) {
	// The window crosses a client crash: replies received before the crash
	// are not re-expected; unanswered requests are still expected; nothing
	// is resent.
	repo := newStreamEnv(t, 2, 0)
	ctx := context.Background()
	sc := NewStreamClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "sc", RequestQueue: "req"}, 8)
	if _, err := sc.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := sc.Send(ctx, ridFor(i), []byte("x"), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Receive two replies, then crash.
	received := map[string]bool{}
	for k := 0; k < 2; k++ {
		rep, err := sc.Receive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		received[rep.RID] = true
	}

	sc2 := NewStreamClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "sc", RequestQueue: "req"}, 8)
	outstanding, err := sc2.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(outstanding) != 4 {
		t.Fatalf("recovered outstanding = %v, want 4 rids", outstanding)
	}
	for _, rid := range outstanding {
		if received[rid] {
			t.Fatalf("recovered window re-expects already-received %s", rid)
		}
	}
	if err := sc2.Drain(ctx, func(rep Reply) { received[rep.RID] = true }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if !received[ridFor(i)] {
			t.Fatalf("reply for %s never received", ridFor(i))
		}
		if n := execCount(t, repo, ridFor(i)); n != 1 {
			t.Fatalf("%s executed %d times", ridFor(i), n)
		}
	}
}

func TestStreamCrashAfterSendIsRecovered(t *testing.T) {
	// Crash immediately after a Send: the new incarnation sees it
	// outstanding (the send tag won the op-number race).
	repo := newStreamEnv(t, 1, 0)
	ctx := context.Background()
	sc := NewStreamClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "sc", RequestQueue: "req"}, 4)
	if _, err := sc.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sc.Send(ctx, "rid-000001", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}

	sc2 := NewStreamClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "sc", RequestQueue: "req"}, 4)
	outstanding, err := sc2.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(outstanding) != 1 || outstanding[0] != "rid-000001" {
		t.Fatalf("outstanding = %v", outstanding)
	}
	rep, err := sc2.Receive(ctx)
	if err != nil || rep.RID != "rid-000001" {
		t.Fatalf("reply %+v %v", rep, err)
	}
	if n := execCount(t, repo, "rid-000001"); n != 1 {
		t.Fatalf("executed %d times", n)
	}
}

func TestStreamExactlyOnceUnderRandomCrashes(t *testing.T) {
	// Randomized crash points across a streamed workload: every request
	// executes exactly once, every reply is eventually received by some
	// incarnation, and no request is ever re-sent.
	repo := newStreamEnv(t, 3, time.Millisecond)
	ctx := context.Background()
	const total = 30
	const window = 5
	rng := rand.New(rand.NewSource(77))
	received := map[string]bool{}
	next := 0
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("workload never completed")
		}
		sc := NewStreamClerk(&LocalConn{Repo: repo}, ClerkConfig{
			ClientID: "sc", RequestQueue: "req", ReceiveWait: 300 * time.Millisecond}, window)
		outstanding, err := sc.Connect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		// Don't resend recovered rids; continue numbering after the max.
		for _, rid := range outstanding {
			var i int
			fmt.Sscanf(rid, "rid-%d", &i)
			if i >= next {
				next = i + 1
			}
		}
		crashed := false
		for !crashed {
			// Keep the window full while work remains.
			for len(sc.Outstanding()) < window && next < total {
				if err := sc.Send(ctx, ridFor(next), []byte("x"), nil); err != nil {
					t.Fatal(err)
				}
				next++
				if rng.Intn(8) == 0 {
					crashed = true
					break
				}
			}
			if crashed {
				break
			}
			if len(sc.Outstanding()) == 0 {
				if next >= total {
					// Done.
					for i := 0; i < total; i++ {
						if !received[ridFor(i)] {
							t.Fatalf("reply for %s never received", ridFor(i))
						}
						if n := execCount(t, repo, ridFor(i)); n != 1 {
							t.Fatalf("%s executed %d times", ridFor(i), n)
						}
					}
					return
				}
				continue
			}
			rep, err := sc.Receive(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if received[rep.RID] {
				t.Fatalf("reply for %s delivered twice", rep.RID)
			}
			received[rep.RID] = true
			if rng.Intn(8) == 0 {
				crashed = true
			}
		}
		// Crash: drop the clerk, loop to a new incarnation.
	}
}
