package core

import (
	"context"
	"fmt"
)

// ThreadedClerk is the Section 5 in-client concurrency extension: "This
// amounts to identifying a client by both a client-id and a 'thread'-id.
// The system now maintains an array of [req-tag, reply-tag] pairs for the
// client, one for each thread-id. The entire array is returned by a
// Connect operation."
//
// Each thread is a full fig. 1 client: its registrant is
// "<client-id>#t<i>" and its private reply queue is per-thread, so replies
// can never cross threads. ConnectAll returns the whole array of
// resynchronisation records, one per thread, exactly as the paper
// describes.
type ThreadedClerk struct {
	qm      QMConn
	cfg     ClerkConfig
	threads []*Clerk
}

// NewThreadedClerk returns a clerk with n independent threads.
func NewThreadedClerk(qm QMConn, cfg ClerkConfig, n int) *ThreadedClerk {
	tc := &ThreadedClerk{qm: qm, cfg: cfg}
	for i := 0; i < n; i++ {
		tcfg := cfg
		tcfg.ClientID = fmt.Sprintf("%s#t%d", cfg.ClientID, i)
		tcfg.ReplyQueue = "" // derive per-thread from the thread's id
		tc.threads = append(tc.threads, NewClerk(qm, tcfg))
	}
	return tc
}

// Threads returns the number of threads.
func (tc *ThreadedClerk) Threads() int { return len(tc.threads) }

// Thread returns thread i's clerk; each thread is used by one goroutine.
func (tc *ThreadedClerk) Thread(i int) *Clerk { return tc.threads[i] }

// ConnectAll connects every thread and returns the array of [s-rid, r-rid,
// ckpt] resynchronisation records, indexed by thread-id.
func (tc *ThreadedClerk) ConnectAll(ctx context.Context) ([]ConnectInfo, error) {
	infos := make([]ConnectInfo, len(tc.threads))
	for i, th := range tc.threads {
		info, err := th.Connect(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: thread %d connect: %w", i, err)
		}
		infos[i] = info
	}
	return infos, nil
}

// DisconnectAll disconnects every thread.
func (tc *ThreadedClerk) DisconnectAll(ctx context.Context) error {
	for i, th := range tc.threads {
		if th.State() == StateDisconnected {
			continue
		}
		if err := th.Disconnect(ctx); err != nil {
			return fmt.Errorf("core: thread %d disconnect: %w", i, err)
		}
	}
	return nil
}
