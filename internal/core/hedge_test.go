package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/queue"
)

// hedgeEnv is a two-queue world for hedging tests: queue "req" (the
// primary) and "req.b" (the hedge target), each drained by its own server
// over one shared repository. Handler behavior is injectable per queue.
type hedgeEnv struct {
	repo   *queue.Repository
	cancel context.CancelFunc
}

func newHedgeEnv(t *testing.T, primaryHandler, hedgeHandler Handler) *hedgeEnv {
	t.Helper()
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	for _, q := range []string{"req", "req.b"} {
		if err := repo.CreateQueue(queue.QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for _, s := range []struct {
		q string
		h Handler
	}{{"req", primaryHandler}, {"req.b", hedgeHandler}} {
		srv, err := NewServer(ServerConfig{Repo: repo, Queue: s.q, Name: "server." + s.q, Handler: s.h})
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(ctx) }()
	}
	return &hedgeEnv{repo: repo, cancel: cancel}
}

// delayedEcho returns an echoHandler that sleeps first — a straggler (or
// merely busy) server.
func delayedEcho(d time.Duration) Handler {
	return func(rc *ReqCtx) ([]byte, error) {
		time.Sleep(d)
		return echoHandler(rc)
	}
}

func newHedgedClerk(t *testing.T, repo *queue.Repository, reg *obs.Registry, pol *HedgePolicy) *ResilientClerk {
	t.Helper()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return NewResilientClerk(&LocalConn{Repo: repo}, ResilientConfig{
		Clerk:   ClerkConfig{ClientID: "hc1", RequestQueue: "req", ReceiveWait: 2 * time.Second},
		Metrics: reg,
		Seed:    1,
		Hedge:   pol,
	})
}

// counters is a shorthand for reading a registry counter by name.
func counterVal(reg *obs.Registry, name string) uint64 {
	return reg.Snapshot().Counters[name]
}

// TestHedgedStragglerWin: the primary queue's server is a hard straggler;
// the hedge arm must win long before the straggler finishes, the reply
// must be correct, and cleanup must leave no residue.
func TestHedgedStragglerWin(t *testing.T) {
	e := newHedgeEnv(t, delayedEcho(1500*time.Millisecond), echoHandler)
	reg := obs.NewRegistry()
	rc := newHedgedClerk(t, e.repo, reg, &HedgePolicy{
		Queues:     []string{"req.b"},
		MinTrigger: 20 * time.Millisecond,
	})
	ctx := context.Background()

	start := time.Now()
	rep, err := rc.Transceive(ctx, "rid-straggle", []byte("x"), nil, nil)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != "echo:x" || rep.IsError() {
		t.Fatalf("reply = %+v", rep)
	}
	if elapsed > time.Second {
		t.Fatalf("hedged transceive took %v; the hedge arm should have won in tens of ms", elapsed)
	}
	if got := counterVal(reg, "clerk.hedge_wins"); got != 1 {
		t.Fatalf("hedge_wins = %d, want 1", got)
	}
	if got := counterVal(reg, "clerk.hedges"); got != 1 {
		t.Fatalf("hedges = %d, want 1", got)
	}

	rc.WaitHedgeDrains()
	// The straggler either never executed (its element was killed) or its
	// duplicate reply was drained; the caller saw exactly one reply.
	if n := execCount(t, e.repo, "rid-straggle"); n < 1 || n > 2 {
		t.Fatalf("executions = %d, want 1 or 2", n)
	}
	cancels := counterVal(reg, "clerk.hedge_cancels")
	wasted := counterVal(reg, "clerk.hedge_wasted")
	if cancels+wasted != 1 {
		t.Fatalf("cancels=%d wasted=%d; exactly one loser must be canceled or drained", cancels, wasted)
	}
	waitDepthZero(t, e.repo, rc.ReplyQueue(), 5*time.Second)

	// The clerk must be usable for the next request after a hedge win.
	rep, err = rc.Transceive(ctx, "rid-after", []byte("y"), nil, nil)
	if err != nil || string(rep.Body) != "echo:y" {
		t.Fatalf("follow-up transceive: %+v, %v", rep, err)
	}
	rc.WaitHedgeDrains() // quiesce background cleanup before teardown
}

// TestHedgedFastPrimaryNeverClones: when the primary replies well inside
// the trigger, hedging must cost nothing — no clones, no hedge wins.
func TestHedgedFastPrimaryNeverClones(t *testing.T) {
	e := newHedgeEnv(t, echoHandler, echoHandler)
	reg := obs.NewRegistry()
	rc := newHedgedClerk(t, e.repo, reg, &HedgePolicy{
		Queues:     []string{"req.b"},
		MinTrigger: 2 * time.Second,
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		rid := "rid-fast-" + strconv.Itoa(i)
		rep, err := rc.Transceive(ctx, rid, []byte("z"), nil, nil)
		if err != nil || string(rep.Body) != "echo:z" {
			t.Fatalf("transceive %d: %+v, %v", i, rep, err)
		}
		if n := execCount(t, e.repo, rid); n != 1 {
			t.Fatalf("executions = %d, want exactly 1 (no clone should launch)", n)
		}
	}
	rc.WaitHedgeDrains()
	if got := counterVal(reg, "clerk.hedges"); got != 0 {
		t.Fatalf("hedges = %d, want 0", got)
	}
	if got := counterVal(reg, "clerk.hedge_clones"); got != 0 {
		t.Fatalf("hedge_clones = %d, want 0", got)
	}
	if got := counterVal(reg, "clerk.hedge_primary_wins"); got != 5 {
		t.Fatalf("hedge_primary_wins = %d, want 5", got)
	}
	if s, ok := rc.HedgeSnapshot(); !ok || s.Count != 5 {
		t.Fatalf("digest snapshot = %+v ok=%v, want 5 observations", s, ok)
	}
}

// ridBarrier makes handlers for two queues that each block until both
// copies of a rid are in flight, then proceed — forcing the duplicate-
// execution race deterministically: neither kill can win, both replies
// commit.
type ridBarrier struct {
	mu      sync.Mutex
	arrived map[string]int
	ch      map[string]chan struct{}
}

func newRIDBarrier() *ridBarrier {
	return &ridBarrier{arrived: make(map[string]int), ch: make(map[string]chan struct{})}
}

func (b *ridBarrier) handler(rc *ReqCtx) ([]byte, error) {
	rid := rc.Request.RID
	b.mu.Lock()
	if b.ch[rid] == nil {
		b.ch[rid] = make(chan struct{})
	}
	b.arrived[rid]++
	ready := b.ch[rid]
	if b.arrived[rid] == 2 {
		close(ready)
	}
	b.mu.Unlock()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("barrier timeout for %s", rid)
	}
	return echoHandler(rc)
}

// TestHedgedDuplicateReplyDedupe (-race): original and clone both commit
// replies for the same rid; the caller sees exactly one, the loser's
// reply is drained (compensated via OnDuplicate), and the reply queue
// ends empty.
func TestHedgedDuplicateReplyDedupe(t *testing.T) {
	bar := newRIDBarrier()
	e := newHedgeEnv(t, bar.handler, bar.handler)
	reg := obs.NewRegistry()
	var dupMu sync.Mutex
	var dups []Reply
	rc := newHedgedClerk(t, e.repo, reg, &HedgePolicy{
		Queues:     []string{"req.b"},
		MinTrigger: time.Millisecond, // hedge almost immediately
		OnDuplicate: func(rep Reply) {
			dupMu.Lock()
			dups = append(dups, rep)
			dupMu.Unlock()
		},
	})
	ctx := context.Background()

	rep, err := rc.Transceive(ctx, "rid-dup", []byte("d"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RID != "rid-dup" || string(rep.Body) != "echo:d" {
		t.Fatalf("reply = %+v", rep)
	}
	rc.WaitHedgeDrains()

	if n := execCount(t, e.repo, "rid-dup"); n != 2 {
		t.Fatalf("executions = %d, want exactly 2 (barrier forces both)", n)
	}
	if got := counterVal(reg, "clerk.hedge_wasted"); got != 1 {
		t.Fatalf("hedge_wasted = %d, want 1", got)
	}
	if got := counterVal(reg, "clerk.hedge_cancels"); got != 0 {
		t.Fatalf("hedge_cancels = %d, want 0 (both executed)", got)
	}
	dupMu.Lock()
	defer dupMu.Unlock()
	if len(dups) != 1 || dups[0].RID != "rid-dup" || string(dups[0].Body) != "echo:d" {
		t.Fatalf("OnDuplicate got %+v, want exactly the one drained duplicate", dups)
	}
	waitDepthZero(t, e.repo, rc.ReplyQueue(), 5*time.Second)
}

// TestHedgedDedupeAcrossCrashRecovery: both the original and a clone
// commit replies, then the client's world crashes before any receive.
// The recovered hedged clerk must resynchronize per fig. 2, surface
// exactly one reply, and scavenge the orphaned duplicate its previous
// life left behind.
func TestHedgedDedupeAcrossCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Life 1: a clerk sends rid-crash, and a hedge clone of it is also
	// enqueued (registrant-free, as the hedge path does). One server
	// executes both; two replies commit. The client "crashes" before
	// receiving either: its in-memory state is simply abandoned.
	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "hc1", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-crash", []byte("c"), nil); err != nil {
		t.Fatal(err)
	}
	clone := requestElement("rid-crash", "hc1", clerk.ReplyQueue(), []byte("c"), nil, nil, 0)
	clone.Headers[hdrHedge] = "1"
	if _, err := repo.Enqueue(nil, "req", clone, "", nil); err != nil {
		t.Fatal(err)
	}
	srvCtx, srvCancel := context.WithCancel(ctx)
	srv, err := NewServer(ServerConfig{Repo: repo, Queue: "req", Name: "server.req", Handler: echoHandler})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(srvCtx) }()
	waitDepth(t, repo, clerk.ReplyQueue(), 2, 5*time.Second)
	srvCancel()
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// Life 2: reopen the repository (recovery replays the WAL) and run a
	// hedged resilient clerk for the same client id and rid.
	repo2, _, err := queue.Open(dir, queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo2.Close() })
	reg := obs.NewRegistry()
	rc := NewResilientClerk(&LocalConn{Repo: repo2}, ResilientConfig{
		Clerk:   ClerkConfig{ClientID: "hc1", RequestQueue: "req", ReceiveWait: 2 * time.Second},
		Metrics: reg,
		Seed:    1,
		Hedge:   &HedgePolicy{Queues: []string{"req"}, MinTrigger: time.Second},
	})
	rep, err := rc.Transceive(ctx, "rid-crash", []byte("c"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RID != "rid-crash" || string(rep.Body) != "echo:c" {
		t.Fatalf("recovered reply = %+v", rep)
	}
	rc.WaitHedgeDrains()
	if n := execCount(t, repo2, "rid-crash"); n != 2 {
		t.Fatalf("executions = %d, want 2 (no re-execution after recovery)", n)
	}
	if got := counterVal(reg, "clerk.hedge_wasted"); got != 1 {
		t.Fatalf("hedge_wasted = %d, want 1 (the orphaned duplicate)", got)
	}
	waitDepthZero(t, repo2, rc.ReplyQueue(), 5*time.Second)

	// And the clerk keeps working with fresh rids.
	srv2, err := NewServer(ServerConfig{Repo: repo2, Queue: "req", Name: "server.req", Handler: echoHandler})
	if err != nil {
		t.Fatal(err)
	}
	srv2Ctx, srv2Cancel := context.WithCancel(ctx)
	t.Cleanup(srv2Cancel)
	go func() { _ = srv2.Serve(srv2Ctx) }()
	rep, err = rc.Transceive(ctx, "rid-crash-2", []byte("n"), nil, nil)
	if err != nil || string(rep.Body) != "echo:n" {
		t.Fatalf("post-recovery transceive: %+v, %v", rep, err)
	}
}

// TestHedgeConservationInvariant: over a mixed workload (some rids hit a
// straggling primary, some don't), the hedge ledger must balance:
//
//	primary_wins + hedge_wins + timeouts + errors == hedged_transceives
//	cancels + wasted == clones                (all losers accounted)
//	sum(executions) == transceives + wasted   (every dup execution drained)
//
// and the reply queue must drain to zero — zero lost, zero duplicated
// surfaced replies.
func TestHedgeConservationInvariant(t *testing.T) {
	const n = 24
	// Straggle every 3rd request on the primary queue only.
	straggler := func(rc *ReqCtx) ([]byte, error) {
		var i int
		fmt.Sscanf(rc.Request.RID, "rid-inv-%d", &i)
		if i%3 == 0 {
			time.Sleep(300 * time.Millisecond)
		}
		return echoHandler(rc)
	}
	e := newHedgeEnv(t, straggler, echoHandler)
	reg := obs.NewRegistry()
	rc := newHedgedClerk(t, e.repo, reg, &HedgePolicy{
		Queues:     []string{"req.b"},
		MinTrigger: 30 * time.Millisecond,
	})
	ctx := context.Background()

	surfaced := make(map[string]int)
	for i := 0; i < n; i++ {
		rid := fmt.Sprintf("rid-inv-%d", i)
		rep, err := rc.Transceive(ctx, rid, []byte("v"), nil, nil)
		if err != nil {
			t.Fatalf("transceive %s: %v", rid, err)
		}
		if rep.RID != rid {
			t.Fatalf("reply rid %q for request %q", rep.RID, rid)
		}
		surfaced[rid]++
	}
	rc.WaitHedgeDrains()

	s := reg.Snapshot()
	c := func(name string) uint64 { return s.Counters[name] }
	if got := c("clerk.hedged_transceives"); got != n {
		t.Fatalf("hedged_transceives = %d, want %d", got, n)
	}
	if wins := c("clerk.hedge_primary_wins") + c("clerk.hedge_wins") + c("clerk.hedge_timeouts") + c("clerk.hedge_errors"); wins != n {
		t.Fatalf("win/timeout/error ledger = %d, want %d: %+v", wins, n, s.Counters)
	}
	if c("clerk.hedge_timeouts") != 0 || c("clerk.hedge_errors") != 0 {
		t.Fatalf("timeouts=%d errors=%d, want 0", c("clerk.hedge_timeouts"), c("clerk.hedge_errors"))
	}
	if got, want := c("clerk.hedge_cancels")+c("clerk.hedge_wasted"), c("clerk.hedge_clones"); got != want {
		t.Fatalf("cancels+wasted = %d, want clones = %d: %+v", got, want, s.Counters)
	}
	var execs int
	for i := 0; i < n; i++ {
		rid := fmt.Sprintf("rid-inv-%d", i)
		if surfaced[rid] != 1 {
			t.Fatalf("rid %s surfaced %d times", rid, surfaced[rid])
		}
		ex := execCount(t, e.repo, rid)
		if ex < 1 || ex > 2 {
			t.Fatalf("rid %s executed %d times", rid, ex)
		}
		execs += ex
	}
	if got, want := uint64(execs), uint64(n)+c("clerk.hedge_wasted"); got != want {
		t.Fatalf("sum(executions) = %d, want transceives+wasted = %d", got, want)
	}
	waitDepthZero(t, e.repo, rc.ReplyQueue(), 5*time.Second)

	// The straggler arm really fired at least once.
	if c("clerk.hedges") == 0 {
		t.Fatal("no hedges triggered; the straggler schedule is broken")
	}
}

// TestHedgedReceiveSkipsForeignReplies: residue from an abandoned rid in
// the reply queue must not break a hedged clerk's next request — the rid
// filter skips it (where the unhedged clerk would fail the protocol).
func TestHedgedReceiveSkipsForeignReplies(t *testing.T) {
	e := newHedgeEnv(t, echoHandler, echoHandler)
	reg := obs.NewRegistry()
	rc := newHedgedClerk(t, e.repo, reg, &HedgePolicy{
		Queues:     []string{"req.b"},
		MinTrigger: time.Second,
	})
	ctx := context.Background()
	// Plant a stale foreign reply ahead of anything the clerk will do.
	stale := replyElement("rid-ancient", StatusOK, []byte("stale"), false, nil, 0)
	if err := e.repo.CreateQueue(queue.QueueConfig{Name: "reply.hc1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.repo.Enqueue(nil, "reply.hc1", stale, "", nil); err != nil {
		t.Fatal(err)
	}
	rep, err := rc.Transceive(ctx, "rid-new", []byte("q"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RID != "rid-new" || string(rep.Body) != "echo:q" {
		t.Fatalf("reply = %+v", rep)
	}
}

func waitDepth(t *testing.T, repo *queue.Repository, qname string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		d, err := repo.Depth(qname)
		if err != nil {
			t.Fatal(err)
		}
		if d == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue %s depth = %d, want %d after %v", qname, d, want, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitDepthZero(t *testing.T, repo *queue.Repository, qname string, timeout time.Duration) {
	t.Helper()
	waitDepth(t, repo, qname, 0, timeout)
}
