package core

// Hedged requests: tail-latency masking for exactly-once Transceive
// (DESIGN.md §11).
//
// The paper's recovery protocol (fig. 2) masks servers that *fail*; a
// server that is merely slow is indistinguishable from a dead one to the
// waiting client, so one straggler queue manager sets the client's p99.
// The cloning model of PAPERS.md's reproducibility report (Pellegrini,
// arXiv:2002.04416) is the fix: when a request has been in flight longer
// than a trigger delay derived from the recent latency distribution,
// clone it — same rid — to up to k alternate queues, take the first
// committed reply, and cancel the losers.
//
// Exactly-once survives because every mechanism is one the recovery
// protocol already trusts:
//
//   - The reply queue is the deduplication point. Every reply carries the
//     rid as a header, so every receive in hedged mode — the primary
//     arm's and each racer's — dequeues with a rid header filter and a
//     registration tag. The first committed dequeue wins; the coordinator
//     surfaces exactly the first arm result and discards the rest.
//   - All record-bearing dequeues run under the client's registrant with
//     the same (rid, ckpt) tag the unhedged clerk would use, so the
//     durable registration record — the resync truth of fig. 2 — can
//     only ever say something a single-armed clerk could have said.
//     Duplicate-drains use the empty registrant and touch no record.
//   - Losers are killed with KillElement (Section 7). A kill that wins
//     deletes the clone before execution; a kill that loses means a
//     duplicate *execution* happened — allowed only because the policy
//     owner asserts idempotence or supplies OnDuplicate compensation —
//     and its duplicate *reply* is drained in the background, never
//     surfaced.
//
// A request may execute more than once only when cancellation loses the
// race; the caller sees exactly one reply in all cases.

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/queue"
)

// hdrHedge marks a cloned request element with its arm index (provenance
// for debugging and experiments; servers ignore it).
const hdrHedge = "hedge"

const (
	// hedgeRetryPause is the racer's backoff after a transport error whose
	// possibly-committed dequeue could not be recovered via ReadLast.
	hedgeRetryPause = 20 * time.Millisecond
	// hedgeDrainAttempts bounds the blocking attempts a background drain
	// makes for each expected duplicate reply before concluding the
	// duplicate was consumed some other way (e.g. by a doomed racer whose
	// response was lost after commit).
	hedgeDrainAttempts = 4
	// hedgeEnqueueGrace bounds a clone enqueue that outlives its arm's
	// cancellation: once started, the enqueue is allowed to finish (on its
	// own deadline) so the clone's eid is always known and killable —
	// aborting it midway could commit an orphan element nobody can cancel.
	hedgeEnqueueGrace = time.Second
)

// HedgePolicy configures hedged Transceives on a ResilientClerk.
//
// Hedging may execute a request more than once (when cancellation loses
// the race with a server that already dequeued the clone), so it is only
// safe for idempotent handlers — or non-idempotent ones with an
// OnDuplicate compensation hook (DESIGN.md §11).
type HedgePolicy struct {
	// Queues are the alternate request queues clones are submitted to, in
	// launch order. They must already exist. A queue may equal the primary
	// request queue (useful when one server pool drains several queues).
	Queues []string
	// Conns supplies the connection each clone arm uses for its enqueue
	// and its racing receive; index-aligned with Queues. Missing or nil
	// entries use the clerk's primary connection. Separate connections are
	// the point: a straggling primary link cannot delay an arm that talks
	// to a healthy one.
	Conns []QMConn
	// MaxClones caps how many clones one Transceive may launch; 0 or
	// anything above len(Queues) means len(Queues).
	MaxClones int
	// TriggerQuantile is the latency quantile (0 < q < 1) of recent
	// Transceives that arms the hedge timer; default 0.95 — hedge only
	// the slowest ~5% of requests.
	TriggerQuantile float64
	// MinTrigger floors the trigger delay, and is the whole trigger until
	// the latency digest has observations. Default 10ms.
	MinTrigger time.Duration
	// ObserveWindow sizes the sliding latency window the trigger is
	// derived from; 0 takes the obs package default (512).
	ObserveWindow int
	// DrainWait bounds each blocking attempt the background drain makes
	// while waiting for a too-late-to-cancel clone's duplicate reply.
	// Default 2s.
	DrainWait time.Duration
	// OnDuplicate, when set, is called with each drained duplicate reply —
	// the compensation hook for non-idempotent handlers (E11 semantics:
	// the duplicate executed and committed; undo it at the application
	// level).
	OnDuplicate func(Reply)
}

// hedgeState is the normalized runtime of a HedgePolicy plus its
// instruments; owned by a ResilientClerk.
type hedgeState struct {
	queues     []string
	conns      []QMConn
	maxClones  int
	quantile   float64
	minTrigger time.Duration
	drainWait  time.Duration
	onDup      func(Reply)

	digest  *obs.QuantileDigest
	drainWG sync.WaitGroup

	mTransceives *obs.Counter // hedged Transceive calls
	mHedges      *obs.Counter // calls where >=1 clone launched
	mClones      *obs.Counter // clone enqueues committed
	mWins        *obs.Counter // calls won by a hedge arm
	mPrimaryWins *obs.Counter // calls won by the primary arm
	mCancels     *obs.Counter // loser elements killed before execution
	mWasted      *obs.Counter // duplicate replies drained (dup executions)
	mTimeouts    *obs.Counter // calls ended by ctx expiry/cancellation
	mErrors      *obs.Counter // calls ended by any other error
	gTrigger     *obs.Gauge   // last computed trigger delay (ns)
	gP50         *obs.Gauge   // digest percentiles (ns), refreshed per win
	gP95         *obs.Gauge
	gP99         *obs.Gauge
}

func newHedgeState(p *HedgePolicy, primary QMConn, reg *obs.Registry) *hedgeState {
	h := &hedgeState{
		queues:     append([]string(nil), p.Queues...),
		maxClones:  p.MaxClones,
		quantile:   p.TriggerQuantile,
		minTrigger: p.MinTrigger,
		drainWait:  p.DrainWait,
		onDup:      p.OnDuplicate,
		digest:     obs.NewQuantileDigest(p.ObserveWindow),

		mTransceives: reg.Counter("clerk.hedged_transceives"),
		mHedges:      reg.Counter("clerk.hedges"),
		mClones:      reg.Counter("clerk.hedge_clones"),
		mWins:        reg.Counter("clerk.hedge_wins"),
		mPrimaryWins: reg.Counter("clerk.hedge_primary_wins"),
		mCancels:     reg.Counter("clerk.hedge_cancels"),
		mWasted:      reg.Counter("clerk.hedge_wasted"),
		mTimeouts:    reg.Counter("clerk.hedge_timeouts"),
		mErrors:      reg.Counter("clerk.hedge_errors"),
		gTrigger:     reg.Gauge("clerk.hedge_trigger_ns"),
		gP50:         reg.Gauge("clerk.hedge_lat_p50_ns"),
		gP95:         reg.Gauge("clerk.hedge_lat_p95_ns"),
		gP99:         reg.Gauge("clerk.hedge_lat_p99_ns"),
	}
	if h.maxClones <= 0 || h.maxClones > len(h.queues) {
		h.maxClones = len(h.queues)
	}
	if h.quantile <= 0 || h.quantile >= 1 {
		h.quantile = 0.95
	}
	if h.minTrigger <= 0 {
		h.minTrigger = 10 * time.Millisecond
	}
	if h.drainWait <= 0 {
		h.drainWait = 2 * time.Second
	}
	h.conns = make([]QMConn, len(h.queues))
	for i := range h.queues {
		if i < len(p.Conns) && p.Conns[i] != nil {
			h.conns[i] = p.Conns[i]
		} else {
			h.conns[i] = primary
		}
	}
	return h
}

// trigger derives the current hedge delay: the trigger quantile of recent
// latencies, floored at MinTrigger (which is the whole answer until the
// digest warms up).
func (h *hedgeState) trigger() time.Duration {
	d := time.Duration(h.digest.Quantile(h.quantile))
	if d < h.minTrigger {
		d = h.minTrigger
	}
	h.gTrigger.Set(int64(d))
	return d
}

// observe feeds one completed Transceive's latency to the digest and
// refreshes the percentile gauges.
func (h *hedgeState) observe(d time.Duration) {
	h.digest.Observe(int64(d))
	s := h.digest.Snapshot()
	h.gP50.Set(s.P50)
	h.gP95.Set(s.P95)
	h.gP99.Set(s.P99)
}

// HedgeSnapshot returns the latency digest behind the hedge trigger; ok is
// false when the clerk has no hedge policy.
func (r *ResilientClerk) HedgeSnapshot() (obs.QuantileSnapshot, bool) {
	if r.hedge == nil {
		return obs.QuantileSnapshot{}, false
	}
	return r.hedge.digest.Snapshot(), true
}

// WaitHedgeDrains blocks until all background loser cleanup (kills and
// duplicate-reply drains) from completed hedged Transceives has finished.
// Call it before tearing down the world under the clerk (tests, graceful
// shutdown); during normal operation cleanup runs concurrently with the
// next request.
func (r *ResilientClerk) WaitHedgeDrains() {
	if r.hedge != nil {
		r.hedge.drainWG.Wait()
	}
}

// armResult is one arm's outcome; arm -1 is the primary.
type armResult struct {
	arm int
	rep Reply
	err error
}

// hedgeArm is a clone arm's identity and — once its enqueue commits — the
// clone element to cancel if the arm loses. eid is written by the arm
// goroutine and read by the coordinator only after the join (WaitGroup
// establishes the happens-before).
type hedgeArm struct {
	queue string
	conn  QMConn
	eid   queue.EID
}

// transceiveHedged runs fig. 2 with request cloning layered on: the
// primary arm is the whole unhedged resilient loop in a goroutine; each
// time the trigger delay elapses without a result, one more clone arm
// launches, until MaxClones. First successful arm wins; losers are
// canceled (or their duplicate replies drained) in the background.
func (r *ResilientClerk) transceiveHedged(ctx context.Context, rid string, body []byte, headers map[string]string, ckpt []byte) (Reply, error) {
	h := r.hedge
	h.mTransceives.Inc()
	start := time.Now()
	trigger := h.trigger()

	armCtx, cancelArms := context.WithCancel(ctx)
	defer cancelArms()

	results := make(chan armResult, 1+h.maxClones) // each arm sends exactly once
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		rep, err := r.transceiveUnhedged(armCtx, rid, body, headers, ckpt)
		results <- armResult{arm: -1, rep: rep, err: err}
	}()

	var (
		clones      []*hedgeArm
		winner      *armResult
		primaryErr  error
		primaryDown bool
		reported    = 0
		grace       = false // primary failed; bounded wait for a clone win
	)
	timer := time.NewTimer(trigger)
	defer timer.Stop()

	for winner == nil {
		select {
		case res := <-results:
			reported++
			if res.err == nil {
				winner = &res
				continue
			}
			if res.arm == -1 {
				primaryErr = res.err
				primaryDown = true
				if ctx.Err() != nil || len(clones) == 0 {
					// Caller gone, or nothing else in flight: fail now.
					return r.hedgeFail(ctx, rid, start, primaryErr, clones, cancelArms, &wg, results)
				}
				// The primary is authoritative for failure semantics, but a
				// clone's committed reply may already be en route — give the
				// survivors one more trigger period.
				grace = true
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(trigger)
				continue
			}
			// A clone arm failed. If every arm has now failed, surface the
			// primary's error (it speaks for the request's real state).
			if primaryDown && reported == 1+len(clones) {
				return r.hedgeFail(ctx, rid, start, primaryErr, clones, cancelArms, &wg, results)
			}
		case <-timer.C:
			if grace {
				return r.hedgeFail(ctx, rid, start, primaryErr, clones, cancelArms, &wg, results)
			}
			if len(clones) < h.maxClones {
				if len(clones) == 0 {
					h.mHedges.Inc()
				}
				clones = append(clones, r.launchClone(armCtx, &wg, len(clones), rid, body, headers, ckpt, results))
				timer.Reset(trigger)
			}
		case <-ctx.Done():
			return r.hedgeFail(ctx, rid, start, ctx.Err(), clones, cancelArms, &wg, results)
		}
	}

	cancelArms()
	wg.Wait() // join: arms quiesced, inner clerk and arm eids safe to touch
	return r.hedgeWin(ctx, rid, start, *winner, clones, results)
}

// hedgeWin finalizes a won hedged Transceive: reconcile the FSM, record
// the latency, attribute the win, sweep up duplicates already consumed by
// losing receivers, and schedule loser cleanup. Must be called after the
// join (all arms have sent their one result).
func (r *ResilientClerk) hedgeWin(ctx context.Context, rid string, start time.Time, res armResult, clones []*hedgeArm, results chan armResult) (Reply, error) {
	h := r.hedge
	r.adoptAfterHedge(rid, res.arm)
	h.observe(time.Since(start))
	// Win attribution is execution provenance — which request element the
	// surfaced reply came from — not which receiver delivered it: both the
	// primary's rid-filtered Receive and every racer block on the same
	// reply queue, so a clone's reply is routinely handed to the primary's
	// (longer-waiting) receiver.
	if res.rep.HedgeArm > 0 {
		h.mWins.Inc()
	} else {
		h.mPrimaryWins.Inc()
	}

	// When duplicate replies committed close together, losing receivers
	// may have dequeued them before cancellation landed: those replies are
	// already consumed — account for them now, or the background drain
	// would wait for queue elements that no longer exist.
	consumed := 0
	for {
		select {
		case extra := <-results:
			if extra.err == nil {
				consumed++
				h.mWasted.Inc()
				if h.onDup != nil {
					h.onDup(extra.rep)
				}
			}
			continue
		default:
		}
		break
	}

	// Loser cleanup — kills, then duplicate drains — runs off the reply
	// path: a kill RPC through the straggling link must not tax the
	// latency the hedge just saved.
	var primaryEID queue.EID
	primaryExists := false
	if r.inner != nil && r.inner.sRID == rid {
		primaryEID = r.inner.lastSendEID
		primaryExists = true
	}
	cleanupCtx, cleanupCancel := context.WithTimeout(context.WithoutCancel(ctx),
		time.Duration(hedgeDrainAttempts+1)*h.drainWait)
	// Did the surfaced reply come from an element the cleanup pass is
	// tracking? Usually yes; the exceptions are orphans — a primary Send
	// canceled mid-RPC after the enqueue committed server-side, or a
	// previous life's clone found during crash resynchronisation. An
	// orphan's reply surfacing means every tracked element is a potential
	// duplicate, so the usual "minus the surfaced one" does not apply.
	surfacedTracked := (res.rep.HedgeArm == 0 && primaryExists) ||
		(res.rep.HedgeArm > 0 && res.rep.HedgeArm <= len(clones) &&
			clones[res.rep.HedgeArm-1] != nil && clones[res.rep.HedgeArm-1].eid != 0)
	h.drainWG.Add(1)
	go func() {
		defer h.drainWG.Done()
		defer cleanupCancel()
		r.cleanupLosers(cleanupCtx, rid, primaryExists, primaryEID, clones, consumed, surfacedTracked)
	}()
	return res.rep, nil
}

// hedgeFail tears down all arms and classifies the failure. Clone
// elements already enqueued are killed where possible — a clone that
// survives must not execute a request the caller believes failed — but
// committed replies are NOT drained: if the caller retries the rid, fig. 2
// resynchronisation will find and surface one of them, which is exactly
// the recovery the paper prescribes.
func (r *ResilientClerk) hedgeFail(ctx context.Context, rid string, start time.Time, err error, clones []*hedgeArm, cancelArms context.CancelFunc, wg *sync.WaitGroup, results chan armResult) (Reply, error) {
	h := r.hedge
	cancelArms()
	wg.Wait()
	// All sends have happened (the channel is buffered for one send per
	// arm); a win may have raced the failure decision — prefer it, since a
	// committed reply in hand beats reporting a failure the caller would
	// only have to recover from.
sweep:
	for {
		select {
		case res := <-results:
			if res.err == nil {
				return r.hedgeWin(ctx, rid, start, res, clones, results)
			}
		default:
			break sweep
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		h.mTimeouts.Inc()
	} else {
		h.mErrors.Inc()
	}
	if err == nil {
		err = ctx.Err()
	}
	// Kill what we can, off-path; no drains (see above).
	killables := cloneKillables(clones)
	if len(killables) > 0 {
		cleanupCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), h.drainWait)
		h.drainWG.Add(1)
		go func() {
			defer h.drainWG.Done()
			defer cancel()
			for _, k := range killables {
				if killed, kerr := k.conn.KillElement(cleanupCtx, k.eid); kerr == nil && killed {
					h.mCancels.Inc()
				}
			}
		}()
	}
	return Reply{}, err
}

type killable struct {
	conn QMConn
	eid  queue.EID
}

func cloneKillables(clones []*hedgeArm) []killable {
	var ks []killable
	for _, c := range clones {
		if c != nil && c.eid != 0 {
			ks = append(ks, killable{conn: c.conn, eid: c.eid})
		}
	}
	return ks
}

// launchClone starts clone arm i: enqueue a copy of the request — same
// rid, same reply queue, empty registrant so no registration record is
// written — then race to receive the reply through this arm's connection.
func (r *ResilientClerk) launchClone(armCtx context.Context, wg *sync.WaitGroup, i int, rid string, body []byte, headers map[string]string, ckpt []byte, results chan<- armResult) *hedgeArm {
	h := r.hedge
	arm := &hedgeArm{queue: h.queues[i], conn: h.conns[i]}
	clientID := r.cfg.Clerk.ClientID
	replyQ := r.ReplyQueue()
	wait := r.cfg.Clerk.ReceiveWait
	if wait <= 0 {
		wait = 30 * time.Second
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		e := requestElement(rid, clientID, replyQ, body, headers, nil, 0)
		e.Headers[hdrHedge] = strconv.Itoa(i + 1)
		// The enqueue is shielded from arm cancellation (bounded by its own
		// grace deadline): a winner declared mid-enqueue must not leave a
		// committed-but-unknown clone element behind — with the eid in hand
		// the cleanup pass can always kill or drain it.
		enqCtx, enqCancel := context.WithTimeout(context.WithoutCancel(armCtx), hedgeEnqueueGrace)
		eid, err := arm.conn.Enqueue(enqCtx, arm.queue, e, "", nil)
		enqCancel()
		if err != nil {
			results <- armResult{arm: i, err: err}
			return
		}
		arm.eid = eid
		h.mClones.Inc()
		if armCtx.Err() != nil {
			// Canceled while enqueueing: don't race for a reply; the
			// cleanup pass kills the clone we just recorded.
			results <- armResult{arm: i, err: armCtx.Err()}
			return
		}

		// The racing receive runs under the client's registrant with the
		// same (rid, ckpt) tag the primary would use: if this dequeue
		// commits, the durable registration record says precisely what a
		// single-armed clerk's successful Receive would have made it say,
		// so crash resynchronisation stays truthful. The rid filter means
		// it can never consume another request's reply.
		tag := encodeReceiveTag(rid, ckpt)
		match := map[string]string{hdrRID: rid}
		for {
			el, err := arm.conn.Dequeue(armCtx, replyQ, clientID, tag, wait, match)
			if errors.Is(err, queue.ErrEmpty) {
				if armCtx.Err() != nil {
					results <- armResult{arm: i, err: armCtx.Err()}
					return
				}
				continue
			}
			if err != nil {
				if armCtx.Err() != nil {
					results <- armResult{arm: i, err: armCtx.Err()}
					return
				}
				// The dequeue may have committed with its response lost in
				// transit. The registration's stable copy is authoritative
				// (the basis of Rereceive): if it holds this rid's reply, a
				// commit happened — recover it instead of waiting for a
				// reply that is already consumed.
				if rep, ok := rereadLastReply(armCtx, arm.conn, replyQ, clientID, rid); ok {
					results <- armResult{arm: i, rep: rep}
					return
				}
				select {
				case <-armCtx.Done():
					results <- armResult{arm: i, err: armCtx.Err()}
					return
				case <-time.After(hedgeRetryPause):
				}
				continue
			}
			rep, perr := parseReply(&el)
			if perr != nil {
				results <- armResult{arm: i, err: perr}
				return
			}
			results <- armResult{arm: i, rep: rep}
			return
		}
	}()
	return arm
}

// rereadLastReply is the racer's Rereceive-equivalent: read the
// registration's stable last-operation copy and accept it only if it is
// this rid's reply.
func rereadLastReply(ctx context.Context, conn QMConn, replyQ, clientID, rid string) (Reply, bool) {
	el, err := conn.ReadLast(ctx, replyQ, clientID)
	if err != nil {
		return Reply{}, false
	}
	rep, err := parseReply(&el)
	if err != nil || rep.RID != rid {
		return Reply{}, false
	}
	return rep, true
}

// adoptAfterHedge reconciles the primary arm's FSM with a win. Called
// after the join, so the inner clerk is quiescent.
//
// If a hedge arm won, the session HAS received this rid's reply — the
// racer's committed dequeue wrote the registration record under the
// client's registrant — but the inner clerk doesn't know. When it sits
// cleanly in Req-Sent for this rid, fire the Receive event it missed;
// any other state (mid-recovery, torn down by cancellation) just drops
// the connection flag, and the next operation resynchronizes from the
// registration tags — which the racer kept truthful by construction.
func (r *ResilientClerk) adoptAfterHedge(rid string, winnerArm int) {
	if winnerArm < 0 {
		return // primary won through the normal path; FSM already right
	}
	c := r.inner
	if c != nil && c.State() == StateReqSent && c.sRID == rid {
		if err := c.fsm.Fire(EvReceive); err == nil {
			return
		}
	}
	if c != nil && c.State() == StateReplyRecvd && c.sRID == rid {
		return // primary's own receive also landed; nothing to adopt
	}
	r.connected = false
}

// cleanupLosers kills every arm's still-pending request element and
// drains the duplicate replies of arms that were too late to kill. Runs
// in the background after a win.
//
// Accounting: of the request elements that existed (primary + committed
// clones), exactly one execution produced the surfaced reply. Each
// successful kill removes one element before execution (hedge_cancels);
// every remaining element was (or will be) executed, so it yields one
// duplicate reply beyond the surfaced one — expectedDups — each of which
// is drained with the empty registrant (no registration record) and a rid
// filter, then counted as hedge_wasted and handed to OnDuplicate.
// consumed is the number of duplicates losing receivers already dequeued
// (accounted by hedgeWin); they will never appear in the queue.
// surfacedTracked reports whether the surfaced reply's producing element
// is among the tracked arms (if not, every tracked element is a dup).
func (r *ResilientClerk) cleanupLosers(ctx context.Context, rid string, primaryExists bool, primaryEID queue.EID, clones []*hedgeArm, consumed int, surfacedTracked bool) {
	h := r.hedge
	arms := 0
	var ks []killable
	if primaryExists {
		arms++
		if primaryEID != 0 {
			ks = append(ks, killable{conn: r.hedgeKillConn(), eid: primaryEID})
		}
	}
	for _, k := range cloneKillables(clones) {
		arms++
		ks = append(ks, k)
	}
	killed := 0
	for _, k := range ks {
		ok, err := k.conn.KillElement(ctx, k.eid)
		if err != nil {
			// One retry; a kill lost to transport is treated as not-killed
			// (the drain below will give up gracefully if no dup appears).
			ok, err = k.conn.KillElement(ctx, k.eid)
		}
		if err == nil && ok {
			killed++
			h.mCancels.Inc()
		}
	}
	expected := arms - killed - consumed
	if surfacedTracked {
		expected--
	}
	if expected < 0 {
		expected = 0
	}
	r.drainDuplicates(ctx, rid, expected)
}

// hedgeKillConn picks a connection for killing the primary's element and
// for drains: the first clone conn (assumed healthy — that's why it's an
// alternate) when distinct, else the primary connection.
func (r *ResilientClerk) hedgeKillConn() QMConn {
	h := r.hedge
	for _, c := range h.conns {
		if c != nil {
			return c
		}
	}
	return r.qm
}

// drainDuplicates removes duplicate replies for rid from the reply queue:
// first a non-blocking sweep (which also scavenges residue left by a
// previous life's crashed hedges for this rid), then bounded blocking
// waits until the expected count is met or the attempt budget concludes
// the duplicates were consumed elsewhere.
func (r *ResilientClerk) drainDuplicates(ctx context.Context, rid string, expected int) {
	h := r.hedge
	conn := r.hedgeKillConn()
	replyQ := r.ReplyQueue()
	match := map[string]string{hdrRID: rid}
	drained := 0
	drainOne := func(wait time.Duration) bool {
		el, err := conn.Dequeue(ctx, replyQ, "", nil, wait, match)
		if err != nil {
			return false
		}
		drained++
		h.mWasted.Inc()
		if h.onDup != nil {
			if rep, perr := parseReply(&el); perr == nil {
				h.onDup(rep)
			}
		}
		return true
	}
	for drainOne(0) {
	}
	for attempt := 0; drained < expected && attempt < hedgeDrainAttempts; attempt++ {
		if ctx.Err() != nil {
			return
		}
		drainOne(h.drainWait)
	}
}
