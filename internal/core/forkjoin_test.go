package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/queue"
)

// TestForkJoin runs the Section 6 fork/join: one request fans out to three
// worker branches; a trigger fires the continuation when all replies have
// landed; the continuation collects and answers the client.
func TestForkJoin(t *testing.T) {
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	for _, q := range []string{"front", "workers", "joiner"} {
		if err := repo.CreateQueue(queue.QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	// Branch workers: square the input.
	worker, err := NewServer(ServerConfig{Repo: repo, Queue: "workers", Handler: func(rc *ReqCtx) ([]byte, error) {
		n, _ := strconv.Atoi(string(rc.Request.Body))
		return []byte(strconv.Itoa(n * n)), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	go worker.Serve(ctx)
	go worker.Serve(ctx)

	// Joiner: collect the three branch replies and answer the client.
	joiner, err := NewServer(ServerConfig{Repo: repo, Queue: "joiner", Handler: func(rc *ReqCtx) ([]byte, error) {
		orig := rc.Request.Headers["orig"]
		k, _ := strconv.Atoi(string(rc.Request.Body))
		replies, err := CollectJoin(rc.Ctx, rc.Txn, repo, orig, k)
		if err != nil {
			return nil, err
		}
		sum := 0
		var parts []string
		for _, rep := range replies {
			n, _ := strconv.Atoi(string(rep.Body))
			sum += n
			parts = append(parts, string(rep.Body))
		}
		return []byte(fmt.Sprintf("%s=%d", strings.Join(parts, "+"), sum)), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	go joiner.Serve(ctx)

	// Drive the fork directly (the client's request is the fork itself).
	if err := Fork(repo, "rid-1", "c1", []BranchReq{
		{Queue: "workers", Body: []byte("2")},
		{Queue: "workers", Body: []byte("3")},
		{Queue: "workers", Body: []byte("4")},
	}, "joiner", NewRequestElement("rid-1/join", "c1", "reply.c1", []byte("3"), map[string]string{"orig": "rid-1"})); err != nil {
		t.Fatal(err)
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "reply.c1"}); err != nil {
		t.Fatal(err)
	}
	rep, err := repo.Dequeue(ctx, nil, "reply.c1", "", queue.DequeueOpts{Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != "4+9+16=29" {
		t.Fatalf("join result %q", rep.Body)
	}
	if err := DestroyJoin(repo, "rid-1"); err != nil {
		t.Fatalf("destroy join: %v", err)
	}
}

// TestForkJoinSurvivesCrashBetweenReplies crashes the node after two of
// three branch replies arrived; the trigger (durable) fires after recovery
// once the third reply lands.
func TestForkJoinSurvivesCrashBetweenReplies(t *testing.T) {
	dir := t.TempDir()
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"workers", "joiner", "reply.c1"} {
		if err := repo.CreateQueue(queue.QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	if err := Fork(repo, "rid-9", "c1", []BranchReq{
		{Queue: "workers", Body: []byte("a")},
		{Queue: "workers", Body: []byte("b")},
		{Queue: "workers", Body: []byte("c")},
	}, "joiner", NewRequestElement("rid-9/join", "c1", "reply.c1", []byte("3"), map[string]string{"orig": "rid-9"})); err != nil {
		t.Fatal(err)
	}

	// Process two branches by hand, then crash.
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		tx := repo.Begin()
		el, err := repo.Dequeue(ctx, tx, "workers", "", queue.DequeueOpts{})
		if err != nil {
			t.Fatal(err)
		}
		req, _ := parseRequest(&el)
		if _, err := repo.Enqueue(tx, req.ReplyTo, replyElement(req.RID, StatusOK, []byte("done"), false, nil, 0), "", nil); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	repo.Crash()

	repo2, inDoubt, err := queue.Open(dir, queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo2.Close() })
	if len(inDoubt) != 0 {
		t.Fatalf("in-doubt: %d", len(inDoubt))
	}
	repo2.RecheckTriggers()
	if got := repo2.Triggers(); len(got) != 1 {
		t.Fatalf("trigger lost: %v", got)
	}
	// Third branch completes after recovery.
	tx := repo2.Begin()
	el, err := repo2.Dequeue(ctx, tx, "workers", "", queue.DequeueOpts{})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := parseRequest(&el)
	if _, err := repo2.Enqueue(tx, req.ReplyTo, replyElement(req.RID, StatusOK, []byte("done"), false, nil, 0), "", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The trigger fires: the continuation appears in the joiner queue.
	cont, err := repo2.Dequeue(ctx, nil, "joiner", "", queue.DequeueOpts{Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	if cont.Headers["orig"] != "rid-9" {
		t.Fatalf("continuation %+v", cont)
	}
	// All three replies are waiting in the staging queue.
	if d, _ := repo2.Depth("join.rid-9"); d != 3 {
		t.Fatalf("staging depth %d", d)
	}
}

func TestThreadedClerk(t *testing.T) {
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Repo: repo, Queue: "req", Handler: func(rc *ReqCtx) ([]byte, error) {
		return append([]byte("for "), rc.Request.Body...), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go srv.Serve(ctx)
	go srv.Serve(ctx)

	tc := NewThreadedClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "mt", RequestQueue: "req"}, 4)
	infos, err := tc.ConnectAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("infos = %d", len(infos))
	}
	// All four threads issue requests concurrently; each gets its own
	// replies (no cross-thread leakage).
	var wg sync.WaitGroup
	for i := 0; i < tc.Threads(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := tc.Thread(i)
			for j := 0; j < 10; j++ {
				body := fmt.Sprintf("t%d-%d", i, j)
				rep, err := th.Transceive(ctx, fmt.Sprintf("rid-%d-%d", i, j), []byte(body), nil, nil)
				if err != nil {
					t.Errorf("thread %d: %v", i, err)
					return
				}
				if string(rep.Body) != "for "+body {
					t.Errorf("thread %d got %q", i, rep.Body)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// Crash one thread mid-request; its recovery is independent.
	th2 := tc.Thread(2)
	if err := th2.Send(ctx, "rid-crash", []byte("pending"), nil); err != nil {
		t.Fatal(err)
	}
	tc2 := NewThreadedClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "mt", RequestQueue: "req"}, 4)
	infos2, err := tc2.ConnectAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The array of per-thread resynchronisation records: only thread 2 has
	// an outstanding request.
	for i, info := range infos2 {
		if i == 2 {
			if !info.Outstanding || info.SRID != "rid-crash" {
				t.Fatalf("thread 2 info %+v", info)
			}
		} else if info.Outstanding {
			t.Fatalf("thread %d spuriously outstanding: %+v", i, info)
		}
	}
	rep, err := tc2.Thread(2).Receive(ctx, nil)
	if err != nil || string(rep.Body) != "for pending" {
		t.Fatalf("recovered thread reply %q %v", rep.Body, err)
	}
	if err := tc2.DisconnectAll(ctx); err != nil {
		t.Fatal(err)
	}
}
