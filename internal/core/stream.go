package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/enc"
	"repro/internal/queue"
)

// StreamClerk implements the paper's closing extension (Section 11): "one
// could extend the Client Model to support streaming of requests and
// replies, as in the Mercury system". Up to Window requests are
// outstanding at once; replies arrive in server-completion order.
//
// The fault-tolerance machinery is the same persistent registration the
// one-at-a-time clerk uses, generalized exactly as Section 4.3 anticipates
// ("different models will need to tag different client operations"): every
// Send and every Receive is tagged with an operation counter plus the full
// outstanding-rid set as of that operation. At reconnect the clerk reads
// both queues' last tags, keeps the one with the higher counter, and has
// its exact window back — nothing resent, nothing lost.
//
// The streaming trade-off: at-least-once reply *processing* is guaranteed
// only for the most recent reply (the registration retains one stable
// element copy per registrant). Windows of 1 degenerate to the base Client
// Model and its full guarantee; applications that must reprocess every
// reply after a crash should use the plain Clerk.
type StreamClerk struct {
	qm  QMConn
	cfg ClerkConfig
	// Window is the maximum number of outstanding requests.
	window int

	opNum       uint64
	outstanding map[string]bool
	connected   bool
}

// ErrWindowFull reports a Send beyond the streaming window.
var ErrWindowFull = errors.New("core: streaming window full")

// NewStreamClerk returns a disconnected streaming clerk with the given
// window (minimum 1).
func NewStreamClerk(qm QMConn, cfg ClerkConfig, window int) *StreamClerk {
	if window < 1 {
		window = 1
	}
	if cfg.ReplyQueue == "" {
		cfg.ReplyQueue = "reply." + cfg.ClientID
	}
	if cfg.ReceiveWait <= 0 {
		cfg.ReceiveWait = 30 * 1e9 // 30s, mirroring ClerkConfig's default
	}
	return &StreamClerk{qm: qm, cfg: cfg, window: window, outstanding: make(map[string]bool)}
}

// streamTag encodes {opNum, outstanding set} — the clerk's whole durable
// state, piggybacked on each queue operation (Section 2's checkpointing).
func streamTag(opNum uint64, outstanding map[string]bool) []byte {
	rids := make([]string, 0, len(outstanding))
	for rid := range outstanding {
		rids = append(rids, rid)
	}
	sort.Strings(rids)
	b := enc.NewBuffer(32)
	b.Uvarint(opNum)
	b.StringSlice(rids)
	return b.Bytes()
}

func parseStreamTag(tag []byte) (opNum uint64, rids []string, ok bool) {
	if len(tag) == 0 {
		return 0, nil, false
	}
	r := enc.NewReader(tag)
	opNum = r.Uvarint()
	rids = r.StringSlice()
	if r.Err() != nil {
		return 0, nil, false
	}
	return opNum, rids, true
}

// Connect registers with both queues and reconstructs the outstanding
// window from whichever operation (last Send or last Receive) happened
// later. It returns the recovered outstanding rids, oldest-first.
func (s *StreamClerk) Connect(ctx context.Context) ([]string, error) {
	if s.connected {
		return nil, errors.New("core: stream clerk already connected")
	}
	if err := s.qm.CreateQueue(ctx, queue.QueueConfig{Name: s.cfg.ReplyQueue}); err != nil {
		return nil, err
	}
	reqInfo, err := s.qm.Register(ctx, s.cfg.RequestQueue, s.cfg.ClientID, true)
	if err != nil {
		return nil, err
	}
	repInfo, err := s.qm.Register(ctx, s.cfg.ReplyQueue, s.cfg.ClientID, true)
	if err != nil {
		return nil, err
	}
	var bestOp uint64
	var bestRids []string
	replyWon := false
	if reqInfo.HasLast {
		if op, rids, ok := parseStreamTag(reqInfo.LastTag); ok && op >= bestOp {
			bestOp, bestRids = op, rids
		}
	}
	if repInfo.HasLast {
		if op, rids, ok := parseStreamTag(repInfo.LastTag); ok && op >= bestOp {
			bestOp, bestRids = op, rids
			replyWon = true
		}
	}
	s.opNum = bestOp
	s.outstanding = make(map[string]bool, len(bestRids))
	for _, rid := range bestRids {
		s.outstanding[rid] = true
	}
	if replyWon {
		// A Receive's tag describes the window BEFORE that dequeue (the
		// reply's identity is unknown until it arrives); the registration's
		// stable element copy — written atomically with the same dequeue —
		// tells us which rid to subtract.
		if el, err := s.qm.ReadLast(ctx, s.cfg.ReplyQueue, s.cfg.ClientID); err == nil {
			if rep, perr := parseReply(&el); perr == nil {
				delete(s.outstanding, rep.RID)
			}
		}
	}
	s.connected = true
	return s.Outstanding(), nil
}

// Outstanding returns the rids awaiting replies, sorted.
func (s *StreamClerk) Outstanding() []string {
	rids := make([]string, 0, len(s.outstanding))
	for rid := range s.outstanding {
		rids = append(rids, rid)
	}
	sort.Strings(rids)
	return rids
}

// Send streams a request; it fails with ErrWindowFull at the window limit
// (Receive first).
func (s *StreamClerk) Send(ctx context.Context, rid string, body []byte, headers map[string]string) error {
	if !s.connected {
		return errors.New("core: stream clerk not connected")
	}
	if s.outstanding[rid] {
		return fmt.Errorf("core: rid %q already outstanding", rid)
	}
	if len(s.outstanding) >= s.window {
		return fmt.Errorf("%w: %d outstanding", ErrWindowFull, len(s.outstanding))
	}
	s.opNum++
	s.outstanding[rid] = true
	tag := streamTag(s.opNum, s.outstanding)
	e := requestElement(rid, s.cfg.ClientID, s.cfg.ReplyQueue, body, headers, nil, 0)
	if _, err := s.qm.Enqueue(ctx, s.cfg.RequestQueue, e, s.cfg.ClientID, tag); err != nil {
		// Not stably sent: roll the window back.
		delete(s.outstanding, rid)
		s.opNum--
		return err
	}
	return nil
}

// Receive returns the next available reply for any outstanding request
// (server-completion order), blocking until one arrives or ctx ends.
func (s *StreamClerk) Receive(ctx context.Context) (Reply, error) {
	if !s.connected {
		return Reply{}, errors.New("core: stream clerk not connected")
	}
	if len(s.outstanding) == 0 {
		return Reply{}, ErrNoOutstanding
	}
	// The new window (after this receive) is committed atomically with the
	// dequeue itself, but we do not know WHICH reply we will get until it
	// arrives. Two-phase: peek-style dequeue cannot work transactionally
	// from the non-transactional client, so instead the tag records the
	// post-state lazily: we tag with the op number and the outstanding set
	// *excluding nothing*, then correct on the next operation. Simpler and
	// still sound: tag with the set minus the received rid — which requires
	// knowing it first. We therefore dequeue tagged with a provisional tag,
	// and the recovery merge tolerates it because the reply queue tag is
	// written by the very dequeue that removed the reply.
	//
	// Concretely: the dequeue's tag must describe the state AFTER the
	// dequeue. Since any reply in our private queue removes exactly the
	// rid it carries, recovery can recompute it: tag = {opNum+1, current
	// set}; at reconnect, if the reply-queue tag is newest, subtract the
	// last dequeued element's rid (kept stably by the registration).
	s.opNum++
	tag := streamTag(s.opNum, s.outstanding)
	el, err := s.qm.Dequeue(ctx, s.cfg.ReplyQueue, s.cfg.ClientID, tag, s.cfg.ReceiveWait, nil)
	for errors.Is(err, queue.ErrEmpty) {
		if ctx.Err() != nil {
			s.opNum--
			return Reply{}, ctx.Err()
		}
		el, err = s.qm.Dequeue(ctx, s.cfg.ReplyQueue, s.cfg.ClientID, tag, s.cfg.ReceiveWait, nil)
	}
	if err != nil {
		s.opNum--
		return Reply{}, err
	}
	rep, err := parseReply(&el)
	if err != nil {
		return Reply{}, err
	}
	if !s.outstanding[rep.RID] {
		return Reply{}, fmt.Errorf("%w: streamed reply %q not outstanding", ErrRIDMismatch, rep.RID)
	}
	delete(s.outstanding, rep.RID)
	return rep, nil
}

// Drain receives until no requests are outstanding, invoking process for
// each reply.
func (s *StreamClerk) Drain(ctx context.Context, process func(Reply)) error {
	for len(s.outstanding) > 0 {
		rep, err := s.Receive(ctx)
		if err != nil {
			return err
		}
		if process != nil {
			process(rep)
		}
	}
	return nil
}

// Disconnect deregisters (only with an empty window: outstanding requests
// would lose their recovery state).
func (s *StreamClerk) Disconnect(ctx context.Context) error {
	if len(s.outstanding) != 0 {
		return fmt.Errorf("core: disconnect with %d outstanding requests", len(s.outstanding))
	}
	if err := s.qm.Deregister(ctx, s.cfg.RequestQueue, s.cfg.ClientID); err != nil {
		return err
	}
	s.connected = false
	return s.qm.Deregister(ctx, s.cfg.ReplyQueue, s.cfg.ClientID)
}
