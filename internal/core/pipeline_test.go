package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/lock"
	"repro/internal/queue"
)

// bank helpers: balances live in the repository's "acct" table.
func setBalance(t *testing.T, repo *queue.Repository, acct string, amount int) {
	t.Helper()
	if err := repo.KVSet(context.Background(), nil, "acct", acct, []byte(strconv.Itoa(amount))); err != nil {
		t.Fatal(err)
	}
}

func balance(t *testing.T, repo *queue.Repository, acct string) int {
	t.Helper()
	v, ok, err := repo.KVGet(context.Background(), nil, "acct", acct, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		return 0
	}
	n, _ := strconv.Atoi(string(v))
	return n
}

func adjust(rc *ReqCtx, acct string, delta int) error {
	v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "acct", acct, true)
	if err != nil {
		return err
	}
	n := 0
	if v != nil {
		n, _ = strconv.Atoi(string(v))
	}
	return rc.Repo.KVSet(rc.Ctx, rc.Txn, "acct", acct, []byte(strconv.Itoa(n+delta)))
}

// transferSteps is the paper's Section 6 example: "a funds transfer request
// may be processed as three separate transactions: debit source bank
// account, credit target bank account, and log the transfer with a
// clearinghouse". Request body: "src dst amount".
func transferSteps() []SagaStep {
	parse := func(body []byte) (src, dst string, amt int) {
		fmt.Sscanf(string(body), "%s %s %d", &src, &dst, &amt)
		return
	}
	return []SagaStep{
		{
			Name: "debit",
			Action: func(rc *ReqCtx) ([]byte, []byte, error) {
				src, _, amt := parse(rc.Request.Body)
				if err := adjust(rc, src, -amt); err != nil {
					return nil, nil, err
				}
				return rc.Request.Body, []byte("debited"), nil
			},
			Compensate: func(rc *ReqCtx) ([]byte, []byte, error) {
				src, _, amt := parse(rc.Request.Body)
				return nil, nil, adjust(rc, src, +amt)
			},
		},
		{
			Name: "credit",
			Action: func(rc *ReqCtx) ([]byte, []byte, error) {
				_, dst, amt := parse(rc.Request.Body)
				if err := adjust(rc, dst, +amt); err != nil {
					return nil, nil, err
				}
				return rc.Request.Body, []byte("credited"), nil
			},
			Compensate: func(rc *ReqCtx) ([]byte, []byte, error) {
				_, dst, amt := parse(rc.Request.Body)
				return nil, nil, adjust(rc, dst, -amt)
			},
		},
		{
			Name: "clearinghouse",
			Action: func(rc *ReqCtx) ([]byte, []byte, error) {
				if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "clearing", rc.Request.RID, rc.Request.Body); err != nil {
					return nil, nil, err
				}
				return []byte("transfer complete"), nil, nil
			},
			Compensate: func(rc *ReqCtx) ([]byte, []byte, error) {
				return nil, nil, rc.Repo.KVDelete(rc.Ctx, rc.Txn, "clearing", rc.Request.RID)
			},
		},
	}
}

func newBankRepo(t *testing.T) *queue.Repository {
	t.Helper()
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	setBalance(t, repo, "alice", 1000)
	setBalance(t, repo, "bob", 500)
	return repo
}

func TestPipelineFundsTransfer(t *testing.T) {
	repo := newBankRepo(t)
	pipe, err := NewPipeline(PipelineConfig{Repo: repo, Name: "xfer", Stages: forwardStages(transferSteps())})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go pipe.Serve(ctx)

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: pipe.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := clerk.Transceive(ctx, "rid-1", []byte("alice bob 100"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IsError() || string(rep.Body) != "transfer complete" {
		t.Fatalf("reply %+v", rep)
	}
	if a, b := balance(t, repo, "alice"), balance(t, repo, "bob"); a != 900 || b != 600 {
		t.Fatalf("balances alice=%d bob=%d", a, b)
	}
	// Clearinghouse record written by the final stage.
	if v, ok, _ := repo.KVGet(ctx, nil, "clearing", "rid-1", false); !ok || string(v) != "alice bob 100" {
		t.Fatalf("clearing record %q %v", v, ok)
	}
}

func TestPipelineSurvivesStageCrashes(t *testing.T) {
	repo := newBankRepo(t)
	crash := chaos.NewPoints(99)
	crash.FailWithProb("pipeline.debit.afterDequeue", 0.3, 2)
	crash.FailWithProb("pipeline.credit.beforeCommit", 0.3, 2)
	crash.FailWithProb("pipeline.clearinghouse.afterCommit", 0.3, 2)
	pipe, err := NewPipeline(PipelineConfig{
		Repo: repo, Name: "xfer",
		Stages: forwardStages(transferSteps()),
		Crash:  crash,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go pipe.Serve(ctx) // Serve restarts crashed stages

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: pipe.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rep, err := clerk.Transceive(ctx, fmt.Sprintf("rid-%d", i), []byte("alice bob 10"), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.IsError() {
			t.Fatalf("transfer %d failed: %s", i, rep.Body)
		}
	}
	// Exactly-once money movement despite the crashes.
	if a, b := balance(t, repo, "alice"), balance(t, repo, "bob"); a != 900 || b != 600 {
		t.Fatalf("balances alice=%d bob=%d (crashes double-ran a stage?)", a, b)
	}
	if crash.TotalFired() == 0 {
		t.Fatal("no stage crashes fired; test is vacuous")
	}
}

func TestPipelineAppErrorShortCircuits(t *testing.T) {
	repo := newBankRepo(t)
	steps := transferSteps()
	// Make the credit stage reject transfers to "frozen".
	origCredit := steps[1].Action
	steps[1].Action = func(rc *ReqCtx) ([]byte, []byte, error) {
		var src, dst string
		var amt int
		fmt.Sscanf(string(rc.Request.Body), "%s %s %d", &src, &dst, &amt)
		if dst == "frozen" {
			return nil, nil, Failf("account frozen")
		}
		return origCredit(rc)
	}
	pipe, err := NewPipeline(PipelineConfig{Repo: repo, Name: "xfer", Stages: forwardStages(steps)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go pipe.Serve(ctx)

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: pipe.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := clerk.Transceive(ctx, "rid-1", []byte("alice frozen 100"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IsError() || string(rep.Body) != "account frozen" {
		t.Fatalf("reply %+v", rep)
	}
	// The debit committed before the failure — the multi-transaction
	// hazard the paper discusses; sagas (below) are the remedy.
	if a := balance(t, repo, "alice"); a != 900 {
		t.Fatalf("alice = %d", a)
	}
	// The clearinghouse stage never ran.
	if _, ok, _ := repo.KVGet(ctx, nil, "clearing", "rid-1", false); ok {
		t.Fatal("clearinghouse ran after failed credit")
	}
}

func TestPipelineLockInheritance(t *testing.T) {
	repo := newBankRepo(t)
	gate := make(chan struct{})
	stages := []Stage{
		{Name: "read", Handler: func(rc *ReqCtx) ([]byte, []byte, error) {
			v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "acct", "alice", true)
			if err != nil {
				return nil, nil, err
			}
			return rc.Request.Body, v, nil
		}},
		{Name: "write", Handler: func(rc *ReqCtx) ([]byte, []byte, error) {
			<-gate
			n, _ := strconv.Atoi(string(rc.Request.ScratchPad))
			err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "acct", "alice", []byte(strconv.Itoa(n-1)))
			return []byte("done"), nil, err
		}},
	}
	pipe, err := NewPipeline(PipelineConfig{Repo: repo, Name: "inh", Stages: stages, LockInheritance: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go pipe.Serve(ctx)

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: pipe.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-inh", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	// Wait until stage "write" holds the request (stage 0 committed).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := repo.Stats("inh.s1")
		if err != nil {
			t.Fatal(err)
		}
		if st.Depth+st.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never reached stage 1")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The inherited lock on alice is still held even though stage 0's
	// transaction committed — another transaction cannot touch it.
	if err := repo.Locks().TryAcquire(999999, "kv/acct/alice", lock.Exclusive); !errors.Is(err, lock.ErrWouldBlock) {
		t.Fatalf("lock released across transaction boundary: %v", err)
	}
	close(gate)
	rep, err := clerk.Receive(ctx, nil)
	if err != nil || string(rep.Body) != "done" {
		t.Fatalf("reply %+v %v", rep, err)
	}
	// After the final stage commits the lock is free.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if err := repo.Locks().TryAcquire(999999, "kv/acct/alice", lock.Exclusive); err == nil {
			repo.Locks().ReleaseAll(999999)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("inherited lock never released")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := balance(t, repo, "alice"); got != 999 {
		t.Fatalf("alice = %d", got)
	}
}

func TestPipelineWithoutInheritanceReleasesEarly(t *testing.T) {
	repo := newBankRepo(t)
	gate := make(chan struct{})
	stages := []Stage{
		{Name: "read", Handler: func(rc *ReqCtx) ([]byte, []byte, error) {
			v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "acct", "alice", true)
			return rc.Request.Body, v, err
		}},
		{Name: "write", Handler: func(rc *ReqCtx) ([]byte, []byte, error) {
			<-gate
			return []byte("done"), nil, nil
		}},
	}
	pipe, err := NewPipeline(PipelineConfig{Repo: repo, Name: "noinh", Stages: stages})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go pipe.Serve(ctx)

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: pipe.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-1", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := repo.Stats("noinh.s1")
		if err != nil {
			t.Fatal(err)
		}
		if st.Depth+st.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never reached stage 1")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Without inheritance the lock was released at stage 0's commit — the
	// serializability loss the paper warns about (Section 6).
	if err := repo.Locks().TryAcquire(999999, "kv/acct/alice", lock.Exclusive); err != nil {
		t.Fatalf("lock still held without inheritance: %v", err)
	}
	repo.Locks().ReleaseAll(999999)
	close(gate)
	if _, err := clerk.Receive(ctx, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSagaCompleteTransfer(t *testing.T) {
	repo := newBankRepo(t)
	saga, err := NewSaga(SagaConfig{Repo: repo, Name: "xfer", Steps: transferSteps()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go saga.Serve(ctx)

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: saga.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := clerk.Transceive(ctx, "rid-1", []byte("alice bob 100"), nil, nil)
	if err != nil || rep.IsError() {
		t.Fatalf("reply %+v %v", rep, err)
	}
	// Completed saga: cancel is too late.
	out, err := saga.Cancel(ctx, "rid-1")
	if err != nil || out != NotCancelable {
		t.Fatalf("cancel of completed saga = %v, %v", out, err)
	}
	if a, b := balance(t, repo, "alice"), balance(t, repo, "bob"); a != 900 || b != 600 {
		t.Fatalf("balances %d/%d", a, b)
	}
}

func TestSagaCancelBeforeFirstCommit(t *testing.T) {
	repo := newBankRepo(t)
	saga, err := NewSaga(SagaConfig{Repo: repo, Name: "xfer", Steps: transferSteps()})
	if err != nil {
		t.Fatal(err)
	}
	// No servers running: the request parks in stage 0's queue.
	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: saga.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-1", []byte("alice bob 100"), nil); err != nil {
		t.Fatal(err)
	}
	out, err := saga.Cancel(ctx, "rid-1")
	if err != nil || out != CanceledImmediately {
		t.Fatalf("cancel = %v, %v", out, err)
	}
	rep, err := clerk.Receive(ctx, nil)
	if err != nil || rep.Status != StatusCanceled {
		t.Fatalf("canceled reply %+v %v", rep, err)
	}
	if a := balance(t, repo, "alice"); a != 1000 {
		t.Fatalf("alice = %d, money moved for a canceled request", a)
	}
}

func TestSagaCancelWithCompensation(t *testing.T) {
	repo := newBankRepo(t)
	saga, err := NewSaga(SagaConfig{Repo: repo, Name: "xfer", Steps: transferSteps()})
	if err != nil {
		t.Fatal(err)
	}
	// Park the request after the debit commits: stop stage 1's queue.
	if err := repo.StopQueue("xfer.s1"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go saga.Serve(ctx)

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: saga.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-1", []byte("alice bob 100"), nil); err != nil {
		t.Fatal(err)
	}
	// Wait for the debit to commit (request parked in xfer.s1).
	deadline := time.Now().Add(5 * time.Second)
	for balance(t, repo, "alice") != 900 {
		if time.Now().After(deadline) {
			t.Fatal("debit never committed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	out, err := saga.Cancel(ctx, "rid-1")
	if err != nil || out != CanceledWithCompensation {
		t.Fatalf("cancel = %v, %v", out, err)
	}
	rep, err := clerk.Receive(ctx, nil)
	if err != nil || rep.Status != StatusCanceled {
		t.Fatalf("canceled reply %+v %v", rep, err)
	}
	// Compensation restored the debit.
	if a, b := balance(t, repo, "alice"), balance(t, repo, "bob"); a != 1000 || b != 500 {
		t.Fatalf("balances after compensation: alice=%d bob=%d", a, b)
	}
}

func TestAppLocks(t *testing.T) {
	repo := newBankRepo(t)
	ctx := context.Background()
	al := &AppLocks{Repo: repo}

	t1 := repo.Begin()
	if err := al.Acquire(ctx, t1, "acct/alice", "req-1"); err != nil {
		t.Fatal(err)
	}
	// Re-entrant for the same owner.
	if err := al.Acquire(ctx, t1, "acct/alice", "req-1"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// The application lock survives the transaction that set it — that is
	// its whole point (Section 6).
	t2 := repo.Begin()
	err := al.Acquire(ctx, t2, "acct/alice", "req-2")
	if !errors.Is(err, ErrAppLockHeld) {
		t.Fatalf("conflicting acquire: %v", err)
	}
	t2.Abort()
	if got := al.Holder(ctx, "acct/alice"); got != "req-1" {
		t.Fatalf("holder = %q", got)
	}
	// Release in the final transaction.
	t3 := repo.Begin()
	if err := al.ReleaseAll(ctx, t3, "req-1", []string{"acct/alice"}); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	t4 := repo.Begin()
	if err := al.Acquire(ctx, t4, "acct/alice", "req-2"); err != nil {
		t.Fatal(err)
	}
	t4.Abort()
}

func TestAppLocksDurableAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	al := &AppLocks{Repo: repo}
	t1 := repo.Begin()
	if err := al.Acquire(ctx, t1, "res", "req-9"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	repo.Crash()

	repo2, _, err := queue.Open(dir, queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	al2 := &AppLocks{Repo: repo2}
	if got := al2.Holder(ctx, "res"); got != "req-9" {
		t.Fatalf("application lock lost in crash: holder %q", got)
	}
}
