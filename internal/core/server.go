package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs/trace"
	"repro/internal/queue"
	"repro/internal/txn"
)

// ErrCrashed is returned by a server loop that hit an injected crash point;
// the actor harness treats it as the process dying.
var ErrCrashed = errors.New("core: injected server crash")

// AppError marks an application-level failure: the request was executed
// unsuccessfully and the server replies with a StatusError reply — still
// exactly-once ("the system may process the request by unsuccessfully
// attempting to execute the request, and then returning a reply that
// indicates that fact", Section 3). Any other handler error aborts the
// transaction, returning the request to the queue for retry (and
// eventually the error queue).
type AppError struct{ Msg string }

func (e *AppError) Error() string { return e.Msg }

// Failf builds an AppError.
func Failf(format string, args ...any) error {
	return &AppError{Msg: fmt.Sprintf(format, args...)}
}

// ReqCtx is the handler's view of one request execution. The handler runs
// inside the server's transaction: its repository updates (via Txn) commit
// or abort atomically with the dequeue and the reply enqueue (fig. 5).
type ReqCtx struct {
	// Ctx is the server loop's context.
	Ctx context.Context
	// Txn is the surrounding transaction.
	Txn *txn.Txn
	// Repo is the server's repository (queues + shared database tables).
	Repo *queue.Repository
	// Request is the request being processed.
	Request Request
}

// Handler processes one request and returns the reply body.
type Handler func(rc *ReqCtx) ([]byte, error)

// ServerConfig configures a server loop.
type ServerConfig struct {
	// Repo is the repository hosting the server's queues (the server is
	// co-located with its queue manager, Section 2).
	Repo *queue.Repository
	// Queue is the request queue to serve.
	Queue string
	// Name is the server's registrant name.
	Name string
	// Handler processes requests.
	Handler Handler
	// Crash, when set, is consulted at the loop's crash points:
	// "server.afterDequeue", "server.beforeReply", "server.beforeCommit",
	// "server.afterCommit".
	Crash *chaos.Points
	// ReplyPriority sets the priority of reply elements.
	ReplyPriority int32
}

// ServerStats counts a server loop's work.
type ServerStats struct {
	Processed uint64 // committed request executions
	AppErrors uint64 // committed error replies
	Aborts    uint64 // aborted attempts (including injected crashes)
}

// Server runs the fig. 5 loop: register, then {begin; dequeue; process;
// enqueue reply; commit} forever. Run several Servers (or several Serve
// goroutines) on one queue for load sharing (Section 1).
type Server struct {
	cfg ServerConfig

	processed atomic.Uint64
	appErrors atomic.Uint64
	aborts    atomic.Uint64
}

// NewServer validates the config and returns a Server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Repo == nil || cfg.Queue == "" || cfg.Handler == nil {
		return nil, errors.New("core: server needs Repo, Queue, and Handler")
	}
	if cfg.Name == "" {
		cfg.Name = "server." + cfg.Queue
	}
	return &Server{cfg: cfg}, nil
}

// Stats returns the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Processed: s.processed.Load(),
		AppErrors: s.appErrors.Load(),
		Aborts:    s.aborts.Load(),
	}
}

// Serve processes requests until ctx is done (returns nil), the repository
// closes (returns nil), or an injected crash point fires (returns
// ErrCrashed). Per fig. 5 the server registers with stable-flag FALSE: it
// needs no recovery state of its own — the queues carry everything.
func (s *Server) Serve(ctx context.Context) error {
	repo := s.cfg.Repo
	if _, _, err := repo.Register(s.cfg.Queue, s.cfg.Name, false); err != nil {
		return fmt.Errorf("core: server register: %w", err)
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		err := s.serveOne(ctx)
		switch {
		case err == nil:
		case errors.Is(err, ErrCrashed):
			return err
		case errors.Is(err, queue.ErrClosed):
			return nil
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return nil
		default:
			// Aborted attempt (poison request, doomed txn, stopped queue,
			// …): back off briefly and loop; the error-queue mechanism
			// bounds per-request retries.
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
}

func (s *Server) serveOne(ctx context.Context) error {
	repo := s.cfg.Repo
	t := repo.Begin()
	el, err := repo.Dequeue(ctx, t, s.cfg.Queue, s.cfg.Name, queue.DequeueOpts{Wait: true})
	if err != nil {
		t.Abort()
		return err
	}
	if s.crash("server.afterDequeue") {
		t.Abort() // the in-process stand-in for dying mid-transaction
		s.aborts.Add(1)
		return ErrCrashed
	}
	req, err := parseRequest(&el)
	if err != nil {
		// Not a request: malformed element. Abort; retries divert it to
		// the error queue.
		t.Abort()
		s.aborts.Add(1)
		return err
	}
	// The processing span resumes the request's trace — after a crash the
	// replayed element carries the original trace id, so the re-execution
	// lands in the same tree. Final: finishing it assembles the tree for
	// slow-trace emission. retry counts every prior attempt the element
	// survived: aborts (AbortCount) plus a crash-recovery redelivery.
	sp, traced := repo.Tracer().Begin(el.TraceRef(), "process")
	if traced {
		sp.Final = true
		retry := int64(el.AbortCount)
		if el.Redelivered {
			retry++
		}
		sp.Annotate(
			trace.Str("rid", req.RID),
			trace.Str("server", s.cfg.Name),
			trace.Int64("retry", retry),
			trace.Int64("txn", int64(t.ID())),
		)
		t.SetTrace(sp.Ref())
		defer repo.Tracer().Finish(&sp)
	}
	body, herr := s.cfg.Handler(&ReqCtx{Ctx: ctx, Txn: t, Repo: repo, Request: req})
	status := StatusOK
	var appErr *AppError
	switch {
	case herr == nil:
	case errors.As(herr, &appErr):
		status = StatusError
		body = []byte(appErr.Msg)
	default:
		t.Abort()
		s.aborts.Add(1)
		return fmt.Errorf("core: handler: %w", herr)
	}
	if traced {
		sp.Annotate(trace.Str("status", status))
	}
	if s.crash("server.beforeReply") {
		t.Abort()
		s.aborts.Add(1)
		return ErrCrashed
	}
	if req.ReplyTo != "" {
		rep := replyElement(req.RID, status, body, false, nil, 0)
		if v := req.Headers[hdrHedge]; v != "" {
			// Echo the clone marker: the reply records which request
			// element produced it, so hedge-win attribution is execution
			// provenance rather than a race over delivery paths.
			rep.Headers[hdrHedge] = v
		}
		rep.Priority = s.cfg.ReplyPriority
		if traced {
			// The reply rides the same trace; its enqueue span parents
			// under the processing span.
			rep.Trace = el.Trace
			rep.Span = sp.ID
		}
		if _, err := repo.Enqueue(t, req.ReplyTo, rep, "", nil); err != nil {
			t.Abort()
			s.aborts.Add(1)
			return fmt.Errorf("core: enqueue reply: %w", err)
		}
	}
	if s.crash("server.beforeCommit") {
		t.Abort()
		s.aborts.Add(1)
		return ErrCrashed
	}
	if err := t.Commit(); err != nil {
		s.aborts.Add(1)
		return fmt.Errorf("core: commit: %w", err)
	}
	s.processed.Add(1)
	if status == StatusError {
		s.appErrors.Add(1)
	}
	if s.crash("server.afterCommit") {
		return ErrCrashed
	}
	return nil
}

func (s *Server) crash(point string) bool {
	return s.cfg.Crash != nil && s.cfg.Crash.Hit(point)
}
