package core

import (
	"testing"

	"repro/internal/queue"
)

// FuzzParseRequestReply feeds arbitrary header/body combinations to the
// protocol parsers: they must classify or reject, never panic, and
// well-formed envelopes must round-trip.
func FuzzParseRequestReply(f *testing.F) {
	f.Add("rid-1", "client", "reply.q", []byte("body"), 0)
	f.Add("", "", "", []byte{}, -1)
	f.Add("rid#2", "c", "", []byte("x"), 3)
	f.Fuzz(func(t *testing.T, rid, client, replyTo string, body []byte, step int) {
		e := requestElement(rid, client, replyTo, body, nil, nil, step)
		req, err := parseRequest(&e)
		if err != nil {
			// Only a malformed step header may fail, and we built it from
			// an int, so parsing must succeed.
			t.Fatalf("own request rejected: %v", err)
		}
		if req.RID != rid || req.ClientID != client || req.ReplyTo != replyTo {
			t.Fatalf("request roundtrip: %+v", req)
		}
		wantStep := step
		if step == 0 {
			wantStep = 0
		}
		if step != 0 && req.Step != wantStep {
			t.Fatalf("step %d != %d", req.Step, step)
		}
		// A request must never parse as a reply.
		if _, err := parseReply(&e); err == nil {
			t.Fatal("request parsed as reply")
		}

		rep := replyElement(rid, StatusOK, body, false, nil, 0)
		pr, err := parseReply(&rep)
		if err != nil || pr.RID != rid || pr.Intermediate {
			t.Fatalf("reply roundtrip: %+v %v", pr, err)
		}
		if _, err := parseRequest(&rep); err == nil {
			t.Fatal("reply parsed as request")
		}
	})
}

// FuzzParseForeignElement: arbitrary elements (e.g. batch-fed garbage) must
// be rejected cleanly by both parsers.
func FuzzParseForeignElement(f *testing.F) {
	f.Add("kindless", "x", []byte("b"))
	f.Add("req", "not-a-number", []byte{})
	f.Fuzz(func(t *testing.T, kind, step string, body []byte) {
		e := queue.Element{
			Body:    body,
			Headers: map[string]string{hdrKind: kind, hdrStep: step},
		}
		_, _ = parseRequest(&e)
		_, _ = parseReply(&e)
	})
}
