package baseline

import (
	"context"
	"strconv"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/lock"
	"repro/internal/queue"
	"repro/internal/rpc"
	"repro/internal/txn"
)

// countingHandler increments a per-rid execution counter — the witness for
// duplicate or lost executions.
func countingHandler(repo *queue.Repository) Handler {
	return func(ctx context.Context, t *txn.Txn, rid string, body []byte) ([]byte, error) {
		v, _, err := repo.KVGet(ctx, t, "execs", rid, true)
		if err != nil {
			return nil, err
		}
		n := 0
		if v != nil {
			n, _ = strconv.Atoi(string(v))
		}
		if err := repo.KVSet(ctx, t, "execs", rid, []byte(strconv.Itoa(n+1))); err != nil {
			return nil, err
		}
		return []byte("done " + rid), nil
	}
}

func execs(t *testing.T, repo *queue.Repository, rid string) int {
	t.Helper()
	v, ok, err := repo.KVGet(context.Background(), nil, "execs", rid, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		return 0
	}
	n, _ := strconv.Atoi(string(v))
	return n
}

func newRepo(t *testing.T) *queue.Repository {
	t.Helper()
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	return repo
}

func TestRawHappyPath(t *testing.T) {
	repo := newRepo(t)
	srv := rpc.NewServer()
	(&RawServer{Repo: repo, Handler: countingHandler(repo)}).Attach(srv)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := &RawClient{RC: rpc.NewClient(addr, nil), Timeout: time.Second}
	t.Cleanup(c.RC.Close)
	out, outcome := c.Do("r1", []byte("x"))
	if outcome != RawOK || string(out) != "done r1" {
		t.Fatalf("Do = %q, %v", out, outcome)
	}
	if n := execs(t, repo, "r1"); n != 1 {
		t.Fatalf("execs = %d", n)
	}
}

func TestRawLosesWorkWithoutRetry(t *testing.T) {
	repo := newRepo(t)
	srv := rpc.NewServer()
	(&RawServer{Repo: repo, Handler: countingHandler(repo)}).Attach(srv)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	net := chaos.NewNetwork(3)
	c := &RawClient{RC: rpc.NewClient(addr, rpc.Dialer(net.Dialer(nil))), Timeout: 200 * time.Millisecond}
	t.Cleanup(c.RC.Close)
	net.SetCutProb(1.0) // every write severs the connection
	_, outcome := c.Do("r1", []byte("x"))
	if outcome != RawLost {
		t.Fatalf("outcome = %v, want RawLost", outcome)
	}
}

func TestRawBlindRetryDuplicates(t *testing.T) {
	// The reply (not the request) is lost: the server executes, the client
	// never hears, resends, and the request executes twice — the paper's
	// non-idempotent-request hazard.
	repo := newRepo(t)
	srv := rpc.NewServer()
	handler := countingHandler(repo)
	// The handler is slow only on its first call, so the client times out
	// once (the "lost reply"), retries blindly, and the request executes
	// twice.
	slowOnce := make(chan struct{}, 1)
	slowOnce <- struct{}{}
	(&RawServer{Repo: repo, Handler: func(ctx context.Context, tx *txn.Txn, rid string, body []byte) ([]byte, error) {
		select {
		case <-slowOnce:
			time.Sleep(300 * time.Millisecond) // client already gone
		default:
		}
		return handler(ctx, tx, rid, body)
	}}).Attach(srv)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	c := &RawClient{RC: rpc.NewClient(addr, nil), Timeout: 150 * time.Millisecond, Retries: 2}
	t.Cleanup(c.RC.Close)

	out, outcome := c.Do("dup", []byte("x"))
	if outcome != RawRetried || out == nil {
		t.Fatalf("outcome = %v", outcome)
	}
	// Both executions committed: a duplicate, as the paper warns.
	deadline := time.Now().Add(2 * time.Second)
	for execs(t, repo, "dup") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("execs = %d, want 2 (duplicate)", execs(t, repo, "dup"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestOneTxnHoldsLocksDuringReplyProcessing(t *testing.T) {
	repo := newRepo(t)
	handler := countingHandler(repo)
	processing := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- OneTxnRequest(context.Background(), repo, handler, "r1", []byte("x"), func(reply []byte) {
			close(processing)
			<-release // slow reply processing (e.g., waiting for the user)
		})
	}()
	<-processing
	// The execs lock for r1 is still held: a conflicting transaction blocks.
	if err := repo.Locks().TryAcquire(424242, "kv/execs/r1", lock.Exclusive); err == nil {
		t.Fatal("lock free during reply processing — contention hazard not modeled")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := repo.Locks().TryAcquire(424242, "kv/execs/r1", lock.Exclusive); err != nil {
		t.Fatalf("lock not released after commit: %v", err)
	}
	repo.Locks().ReleaseAll(424242)
}

func TestTwoTxnLosesReplyOnCrash(t *testing.T) {
	repo := newRepo(t)
	handler := countingHandler(repo)
	processed := 0
	out, err := TwoTxnRequest(context.Background(), repo, handler, "r1", []byte("x"), true, func([]byte) { processed++ })
	if err != nil {
		t.Fatal(err)
	}
	if out != TwoTxnReplyLost || processed != 0 {
		t.Fatalf("outcome = %v, processed = %d", out, processed)
	}
	// The request executed exactly once — only the reply is gone.
	if n := execs(t, repo, "r1"); n != 1 {
		t.Fatalf("execs = %d", n)
	}
	// Without the crash the reply is processed.
	out, err = TwoTxnRequest(context.Background(), repo, handler, "r2", []byte("x"), false, func([]byte) { processed++ })
	if err != nil || out != TwoTxnProcessed || processed != 1 {
		t.Fatalf("second request: %v %v %d", out, err, processed)
	}
}
