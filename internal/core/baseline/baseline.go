// Package baseline implements the request-processing designs the paper
// argues against (Section 2), as comparison arms for the experiments:
//
//   - Raw messaging: requests and replies are ordinary messages. "An
//     untimely system failure may cause either the request or the reply to
//     be lost", and a client that cannot tell must either give up (lost
//     work) or resubmit (duplicate execution of a non-idempotent request).
//   - The one-transaction client: {send request, receive reply, process
//     reply} inside one transaction. Correct, but "processing the reply may
//     be slow, which creates contention for resources (e.g., locks) that
//     the server must hold until the transaction commits".
//   - The two-transaction client: {send, receive} inside a transaction,
//     reply processed outside. Less contention, "but if the client fails
//     after receiving the reply and before processing it, the reply may be
//     lost".
package baseline

import (
	"context"
	"fmt"
	"time"

	"repro/internal/enc"
	"repro/internal/queue"
	"repro/internal/rpc"
	"repro/internal/txn"
)

// Handler executes one request body against the shared database inside t
// and returns the reply body.
type Handler func(ctx context.Context, t *txn.Txn, rid string, body []byte) ([]byte, error)

// --- raw messaging (no queues) ---

// RawServer executes requests the moment their message arrives. It keeps
// no record of which requests it has seen: a resent request executes
// again. (That is the point of this baseline.)
type RawServer struct {
	Repo    *queue.Repository
	Handler Handler
}

// Attach registers the server's method on an rpc server.
func (s *RawServer) Attach(srv *rpc.Server) {
	srv.Handle("raw.exec", func(p []byte) ([]byte, error) {
		r := enc.NewReader(p)
		rid := r.String()
		body := r.BytesField()
		if err := r.Err(); err != nil {
			return nil, err
		}
		t := s.Repo.Begin()
		out, err := s.Handler(context.Background(), t, rid, body)
		if err != nil {
			t.Abort()
			return nil, err
		}
		if err := t.Commit(); err != nil {
			return nil, err
		}
		return out, nil
	})
}

// RawOutcome classifies one raw request attempt from the client's view.
type RawOutcome int

const (
	// RawOK: the reply arrived.
	RawOK RawOutcome = iota
	// RawLost: no reply; the client gave up. The request may or may not
	// have executed — the client cannot tell.
	RawLost
	// RawRetried: the reply arrived only after one or more blind resends,
	// each of which may have executed the request again.
	RawRetried
)

// RawClient issues requests as plain RPCs.
type RawClient struct {
	RC *rpc.Client
	// Timeout bounds each attempt.
	Timeout time.Duration
	// Retries is how many times to blindly resend on failure; zero means
	// give up immediately (lost work instead of duplicates).
	Retries int
}

// Do sends the request, applying the client's retry policy. It returns the
// reply (if any) and the attempt classification.
func (c *RawClient) Do(rid string, body []byte) ([]byte, RawOutcome) {
	b := enc.NewBuffer(32 + len(body))
	b.String(rid)
	b.BytesField(body)
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		out, err := c.RC.Call(ctx, "raw.exec", b.Bytes())
		cancel()
		if err == nil {
			if attempt > 0 {
				return out, RawRetried
			}
			return out, RawOK
		}
		if attempt >= c.Retries {
			return nil, RawLost
		}
	}
}

// --- the one-transaction client (Section 2) ---

// OneTxnRequest executes {execute the request, receive the reply, process
// the reply} as a single transaction: processReply runs while the
// transaction — and every lock the request execution took — is still open.
// Slow reply processing therefore blocks every conflicting request, the
// contention the paper's design eliminates.
func OneTxnRequest(ctx context.Context, repo *queue.Repository, handler Handler, rid string, body []byte, processReply func([]byte)) error {
	t := repo.Begin()
	reply, err := handler(ctx, t, rid, body)
	if err != nil {
		t.Abort()
		return err
	}
	processReply(reply) // locks held across reply processing
	if err := t.Commit(); err != nil {
		return fmt.Errorf("baseline: one-txn commit: %w", err)
	}
	return nil
}

// --- the two-transaction client (Section 2) ---

// TwoTxnOutcome reports what happened to the reply.
type TwoTxnOutcome int

const (
	// TwoTxnProcessed: the reply was processed.
	TwoTxnProcessed TwoTxnOutcome = iota
	// TwoTxnReplyLost: the transaction committed (request executed,
	// exactly once) but the client died before processing the reply — the
	// reply is gone, with no Rereceive to recover it.
	TwoTxnReplyLost
)

// TwoTxnRequest executes {send request, receive reply} inside a
// transaction and processes the reply after commit. crashBeforeProcess
// simulates the client dying in the unprotected window; the request's
// effects stand but the reply is lost.
func TwoTxnRequest(ctx context.Context, repo *queue.Repository, handler Handler, rid string, body []byte, crashBeforeProcess bool, processReply func([]byte)) (TwoTxnOutcome, error) {
	t := repo.Begin()
	reply, err := handler(ctx, t, rid, body)
	if err != nil {
		t.Abort()
		return TwoTxnReplyLost, err
	}
	if err := t.Commit(); err != nil {
		return TwoTxnReplyLost, err
	}
	if crashBeforeProcess {
		return TwoTxnReplyLost, nil
	}
	processReply(reply)
	return TwoTxnProcessed, nil
}
