package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/queue"
)

// SagaStep is one transaction of a compensatable multi-transaction request
// (Section 7, citing Garcia-Molina & Salem's sagas): Action executes the
// step; Compensate undoes a committed Action if the request is cancelled
// later.
type SagaStep struct {
	// Name names the step.
	Name string
	// Action is the forward transaction.
	Action StageHandler
	// Compensate undoes a committed Action. It receives the body and
	// scratch pad the request carried when it was cancelled, with
	// Request.Step set to the step being compensated.
	Compensate StageHandler
}

// SagaConfig configures a saga.
type SagaConfig struct {
	Repo  *queue.Repository
	Name  string
	Steps []SagaStep
	// LockInheritance applies to the forward pipeline.
	LockInheritance bool
}

// CancelOutcome classifies a cancellation attempt (Section 7).
type CancelOutcome int

const (
	// NotCancelable: the request completed (or is completing); its reply
	// stands.
	NotCancelable CancelOutcome = iota
	// CanceledImmediately: killed before the first transaction committed.
	CanceledImmediately
	// CanceledWithCompensation: killed mid-saga; committed steps are being
	// compensated by a serial multi-transaction request.
	CanceledWithCompensation
)

func (o CancelOutcome) String() string {
	switch o {
	case NotCancelable:
		return "not-cancelable"
	case CanceledImmediately:
		return "canceled-immediately"
	case CanceledWithCompensation:
		return "canceled-with-compensation"
	default:
		return fmt.Sprintf("CancelOutcome(%d)", int(o))
	}
}

// Saga runs a multi-transaction request pipeline whose committed prefix
// can be undone by compensating transactions, extending cancellation past
// the first commit: "one cancels the request by compensating for the
// committed transactions that executed on behalf of the request ... as a
// serial multi-transaction request" (Section 7).
type Saga struct {
	cfg SagaConfig
	fwd *Pipeline
}

// NewSaga creates the forward and compensation queues.
func NewSaga(cfg SagaConfig) (*Saga, error) {
	if cfg.Name == "" {
		cfg.Name = "saga"
	}
	fwd, err := NewPipeline(PipelineConfig{
		Repo:            cfg.Repo,
		Name:            cfg.Name,
		Stages:          forwardStages(cfg.Steps),
		LockInheritance: cfg.LockInheritance,
	})
	if err != nil {
		return nil, err
	}
	s := &Saga{cfg: cfg, fwd: fwd}
	for i := range cfg.Steps {
		qname := s.compQueue(i)
		if err := cfg.Repo.CreateQueue(queue.QueueConfig{Name: qname}); err != nil && !errors.Is(err, queue.ErrExists) {
			return nil, err
		}
	}
	return s, nil
}

func forwardStages(steps []SagaStep) []Stage {
	out := make([]Stage, len(steps))
	for i, st := range steps {
		out[i] = Stage{Name: st.Name, Handler: st.Action}
	}
	return out
}

func (s *Saga) compQueue(i int) string { return fmt.Sprintf("%s.c%d", s.cfg.Name, i) }

// EntryQueue returns the queue clients submit saga requests to.
func (s *Saga) EntryQueue() string { return s.fwd.EntryQueue() }

// Serve runs the forward pipeline and the compensation servers until ctx
// is done.
func (s *Saga) Serve(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.fwd.Serve(ctx)
	}()
	for i := range s.cfg.Steps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.serveComp(ctx, i)
		}(i)
	}
	wg.Wait()
}

// serveComp runs the compensation server for step i: it undoes step i and
// forwards the compensation request to step i-1; compensating step 0
// finishes with a canceled reply.
func (s *Saga) serveComp(ctx context.Context, i int) {
	repo := s.cfg.Repo
	name := fmt.Sprintf("%s.comp%d", s.cfg.Name, i)
	if _, _, err := repo.Register(s.compQueue(i), name, false); err != nil {
		return
	}
	for ctx.Err() == nil {
		err := s.compOne(ctx, i, name)
		if errors.Is(err, queue.ErrClosed) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return
		}
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
}

func (s *Saga) compOne(ctx context.Context, i int, name string) error {
	repo := s.cfg.Repo
	t := repo.Begin()
	el, err := repo.Dequeue(ctx, t, s.compQueue(i), name, queue.DequeueOpts{Wait: true})
	if err != nil {
		t.Abort()
		return err
	}
	req, err := parseRequest(&el)
	if err != nil {
		t.Abort()
		return err
	}
	req.Step = i
	if comp := s.cfg.Steps[i].Compensate; comp != nil {
		if _, _, err := comp(&ReqCtx{Ctx: ctx, Txn: t, Repo: repo, Request: req}); err != nil {
			t.Abort()
			return fmt.Errorf("core: compensate %s: %w", name, err)
		}
	}
	if i > 0 {
		next := requestElement(req.RID, req.ClientID, req.ReplyTo, req.Body, req.Headers, req.ScratchPad, i-1)
		if _, err := repo.Enqueue(t, s.compQueue(i-1), next, "", nil); err != nil {
			t.Abort()
			return err
		}
	} else if req.ReplyTo != "" {
		rep := replyElement(req.RID, StatusCanceled, []byte("canceled by compensation"), false, nil, 0)
		if _, err := repo.Enqueue(t, req.ReplyTo, rep, "", nil); err != nil {
			t.Abort()
			return err
		}
	}
	return t.Commit()
}

// Cancel tries to cancel the saga request with the given rid: it hunts the
// request element through the stage queues, kills it, and — if any steps
// already committed — launches the compensation chain. The client
// eventually receives a StatusCanceled reply (immediately on
// CanceledImmediately, after compensation otherwise); NotCancelable means
// the request finished and the real reply stands.
func (s *Saga) Cancel(ctx context.Context, rid string) (CancelOutcome, error) {
	repo := s.cfg.Repo
	deadline := time.Now().Add(2 * time.Second)
	for {
		for i := len(s.cfg.Steps) - 1; i >= 0; i-- {
			els, err := repo.ListElements(s.fwd.StageQueue(i), 0)
			if err != nil {
				return NotCancelable, err
			}
			for _, el := range els {
				if el.Headers[hdrRID] != rid {
					continue
				}
				killed, err := repo.KillElement(el.EID)
				if err != nil {
					return NotCancelable, err
				}
				if !killed {
					break // moved on; rescan
				}
				if s.cfg.LockInheritance {
					s.fwd.ReleaseRequestLocks(rid)
				}
				if i == 0 {
					// Nothing committed: cancellation like Section 7's
					// simple case, synthesize the canceled reply directly.
					if el.ReplyTo != "" {
						rep := replyElement(rid, StatusCanceled, nil, false, nil, 0)
						if _, err := repo.Enqueue(nil, el.ReplyTo, rep, "", nil); err != nil {
							return CanceledImmediately, err
						}
					}
					return CanceledImmediately, nil
				}
				// Steps 0..i-1 committed: compensate them, newest first.
				comp := requestElement(rid, el.Headers[hdrClient], el.ReplyTo, el.Body, nil, el.ScratchPad, i-1)
				if _, err := repo.Enqueue(nil, s.compQueue(i-1), comp, "", nil); err != nil {
					return CanceledWithCompensation, err
				}
				return CanceledWithCompensation, nil
			}
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return NotCancelable, nil
		}
		time.Sleep(5 * time.Millisecond) // in-flight somewhere; retry briefly
	}
}
