package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/queue"
	"repro/internal/queue/qservice"
)

// QMConn is the clerk's view of a queue manager: the non-transactional
// surface of Section 4's abstraction. It is satisfied both by a local
// in-process repository (LocalConn) and by a remote one over RPC
// (qservice.Client) — the clerk neither knows nor cares, which is the
// paper's indirection point.
type QMConn interface {
	Register(ctx context.Context, qname, registrant string, stable bool) (queue.RegInfo, error)
	Deregister(ctx context.Context, qname, registrant string) error
	Enqueue(ctx context.Context, qname string, e queue.Element, registrant string, tag []byte) (queue.EID, error)
	EnqueueOneWay(qname string, e queue.Element, registrant string, tag []byte) error
	Dequeue(ctx context.Context, qname, registrant string, tag []byte, wait time.Duration, match map[string]string) (queue.Element, error)
	ReadLast(ctx context.Context, qname, registrant string) (queue.Element, error)
	KillElement(ctx context.Context, eid queue.EID) (bool, error)
	CreateQueue(ctx context.Context, cfg queue.QueueConfig) error
}

// LocalConn adapts an in-process repository to QMConn.
type LocalConn struct {
	Repo *queue.Repository
}

var _ QMConn = (*LocalConn)(nil)
var _ QMConn = (*qservice.Client)(nil)

// Register implements QMConn.
func (c *LocalConn) Register(ctx context.Context, qname, registrant string, stable bool) (queue.RegInfo, error) {
	_, ri, err := c.Repo.Register(qname, registrant, stable)
	return ri, err
}

// Deregister implements QMConn.
func (c *LocalConn) Deregister(ctx context.Context, qname, registrant string) error {
	return c.Repo.Deregister(c.Repo.HandleFor(qname, registrant))
}

// Enqueue implements QMConn.
func (c *LocalConn) Enqueue(ctx context.Context, qname string, e queue.Element, registrant string, tag []byte) (queue.EID, error) {
	return c.Repo.Enqueue(nil, qname, e, registrant, tag)
}

// EnqueueOneWay implements QMConn; locally the distinction is moot, the
// enqueue simply runs synchronously.
func (c *LocalConn) EnqueueOneWay(qname string, e queue.Element, registrant string, tag []byte) error {
	_, err := c.Repo.Enqueue(nil, qname, e, registrant, tag)
	return err
}

// Dequeue implements QMConn.
func (c *LocalConn) Dequeue(ctx context.Context, qname, registrant string, tag []byte, wait time.Duration, match map[string]string) (queue.Element, error) {
	opts := queue.DequeueOpts{Tag: tag, HeaderMatch: match}
	if wait > 0 {
		opts.Wait = true
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, wait)
		defer cancel()
	}
	e, err := c.Repo.Dequeue(ctx, nil, qname, registrant, opts)
	if errors.Is(err, context.DeadlineExceeded) {
		return queue.Element{}, queue.ErrEmpty
	}
	return e, err
}

// ReadLast implements QMConn.
func (c *LocalConn) ReadLast(ctx context.Context, qname, registrant string) (queue.Element, error) {
	return c.Repo.HandleFor(qname, registrant).ReadLast()
}

// KillElement implements QMConn.
func (c *LocalConn) KillElement(ctx context.Context, eid queue.EID) (bool, error) {
	return c.Repo.KillElement(eid)
}

// CreateQueue implements QMConn (idempotent, like the remote one).
func (c *LocalConn) CreateQueue(ctx context.Context, cfg queue.QueueConfig) error {
	err := c.Repo.CreateQueue(cfg)
	if errors.Is(err, queue.ErrExists) {
		return nil
	}
	return err
}
