package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/queue"
)

// StageHandler processes a request at one stage of a multi-transaction
// request (Section 6). It returns the body and scratch pad handed to the
// next stage (the scratch pad is the only state that crosses transaction
// boundaries: "an application programmer cannot rely on local program
// variables to record the state of the request across multiple
// transactions").
type StageHandler func(rc *ReqCtx) (body []byte, scratch []byte, err error)

// Stage is one transaction of a multi-transaction request.
type Stage struct {
	// Name names the stage (registrant and diagnostics).
	Name string
	// Handler runs the stage's transaction body.
	Handler StageHandler
}

// PipelineConfig configures a fig. 6 pipeline: a sequence of server
// processes joined by queue pairs, executing one request as a series of
// transactions.
type PipelineConfig struct {
	// Repo hosts the stage queues (a single-node pipeline; the distributed
	// variant moves elements between repositories with two-phase commit).
	Repo *queue.Repository
	// Name prefixes the stage queue names: "<name>.s<i>".
	Name string
	// Stages are the transactions, in order.
	Stages []Stage
	// LockInheritance makes each stage bequeath its locks to the next, so
	// the whole request is serializable (Section 6): "each transaction's
	// database locks are inherited by the next transaction in the
	// sequence".
	LockInheritance bool
	// Crash is consulted at each stage's crash points
	// ("pipeline.<stage>.afterDequeue", ".beforeCommit", ".afterCommit").
	Crash *chaos.Points
	// RetryLimit and ErrorQueue configure each stage queue; zero values
	// mean retry forever / no error queue.
	RetryLimit int32
	ErrorQueue string
	// Instances runs that many server processes per stage (load sharing);
	// zero means one.
	Instances int
}

// Pipeline runs the stage servers.
type Pipeline struct {
	cfg    PipelineConfig
	queues []string
}

// StageQueue returns the input queue name of stage i.
func (p *Pipeline) StageQueue(i int) string { return p.queues[i] }

// EntryQueue returns the queue clients send requests to (stage 0's input).
func (p *Pipeline) EntryQueue() string { return p.queues[0] }

// NewPipeline creates the stage queues and returns the pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Repo == nil || len(cfg.Stages) == 0 {
		return nil, errors.New("core: pipeline needs Repo and Stages")
	}
	if cfg.Name == "" {
		cfg.Name = "pipe"
	}
	p := &Pipeline{cfg: cfg}
	for i := range cfg.Stages {
		qname := fmt.Sprintf("%s.s%d", cfg.Name, i)
		err := cfg.Repo.CreateQueue(queue.QueueConfig{
			Name:       qname,
			RetryLimit: cfg.RetryLimit,
			ErrorQueue: cfg.ErrorQueue,
		})
		if err != nil && !errors.Is(err, queue.ErrExists) {
			return nil, err
		}
		p.queues = append(p.queues, qname)
	}
	return p, nil
}

// lockBucket is the synthetic lock owner that carries a request's locks
// between the transactions of its stages. The high bit keeps buckets
// disjoint from transaction ids.
func lockBucket(rid string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(rid))
	return h.Sum64() | 1<<63
}

// ReleaseRequestLocks force-releases a request's inherited-lock bucket —
// the escape hatch when a request dies mid-pipeline (diverted to an error
// queue or compensated) while holding inherited locks.
func (p *Pipeline) ReleaseRequestLocks(rid string) {
	p.cfg.Repo.Locks().ReleaseAll(lockBucket(rid))
}

// Serve runs every stage (Instances goroutines each) until ctx is done.
// An injected crash stops only the crashed stage instance; Serve restarts
// it, modeling independent process failures.
func (p *Pipeline) Serve(ctx context.Context) {
	instances := p.cfg.Instances
	if instances <= 0 {
		instances = 1
	}
	var wg sync.WaitGroup
	for i := range p.cfg.Stages {
		for k := 0; k < instances; k++ {
			wg.Add(1)
			go func(i, k int) {
				defer wg.Done()
				for ctx.Err() == nil {
					err := p.ServeStageInstance(ctx, i, k)
					if errors.Is(err, ErrCrashed) {
						continue // the stage process restarts
					}
					return
				}
			}(i, k)
		}
	}
	wg.Wait()
}

// ServeStage runs stage i's fig. 5 loop until ctx ends, the repository
// closes, or an injected crash fires (ErrCrashed).
func (p *Pipeline) ServeStage(ctx context.Context, i int) error {
	return p.ServeStageInstance(ctx, i, 0)
}

// ServeStageInstance runs one instance of stage i's loop.
func (p *Pipeline) ServeStageInstance(ctx context.Context, i, instance int) error {
	cfg := p.cfg
	stage := cfg.Stages[i]
	name := stage.Name
	if name == "" {
		name = fmt.Sprintf("%s.stage%d", cfg.Name, i)
	}
	if instance > 0 {
		name = fmt.Sprintf("%s.i%d", name, instance)
	}
	if _, _, err := cfg.Repo.Register(p.queues[i], name, false); err != nil {
		return err
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		err := p.stageOne(ctx, i, name)
		switch {
		case err == nil:
		case errors.Is(err, ErrCrashed):
			return err
		case errors.Is(err, queue.ErrClosed):
			return nil
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return nil
		default:
			// Aborted attempt (or stopped queue): back off briefly, then
			// retry via the queue.
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
}

func (p *Pipeline) stageOne(ctx context.Context, i int, name string) error {
	cfg := p.cfg
	repo := cfg.Repo
	crashPt := func(pt string) bool {
		return cfg.Crash != nil && cfg.Crash.Hit(fmt.Sprintf("pipeline.%s.%s", name, pt))
	}
	t := repo.Begin()
	el, err := repo.Dequeue(ctx, t, p.queues[i], name, queue.DequeueOpts{Wait: true})
	if err != nil {
		t.Abort()
		return err
	}
	req, err := parseRequest(&el)
	if err != nil {
		t.Abort()
		return err
	}
	if cfg.LockInheritance {
		// Adopt the locks bequeathed by the previous stage. On abort they
		// go back to the bucket so a retry re-adopts them.
		bucket := lockBucket(req.RID)
		repo.Locks().Transfer(bucket, t.ID())
		t.OnAbort(func() { repo.Locks().Transfer(t.ID(), bucket) })
	}
	if crashPt("afterDequeue") {
		t.Abort()
		return ErrCrashed
	}
	body, scratch, herr := cfg.Stages[i].Handler(&ReqCtx{Ctx: ctx, Txn: t, Repo: repo, Request: req})
	var appErr *AppError
	switch {
	case herr == nil:
	case errors.As(herr, &appErr):
		// Application failure: reply with the error now; later stages never
		// run. Inherited locks for this request are released with this
		// final transaction.
		if cfg.LockInheritance {
			repo.Locks().Transfer(lockBucket(req.RID), t.ID())
		}
		if req.ReplyTo != "" {
			rep := replyElement(req.RID, StatusError, []byte(appErr.Msg), false, nil, 0)
			if _, err := repo.Enqueue(t, req.ReplyTo, rep, "", nil); err != nil {
				t.Abort()
				return err
			}
		}
		if err := t.Commit(); err != nil {
			return err
		}
		return nil
	default:
		t.Abort()
		return fmt.Errorf("core: stage %s: %w", name, herr)
	}

	last := i == len(cfg.Stages)-1
	if last {
		if req.ReplyTo != "" {
			rep := replyElement(req.RID, StatusOK, body, false, nil, 0)
			if _, err := repo.Enqueue(t, req.ReplyTo, rep, "", nil); err != nil {
				t.Abort()
				return err
			}
		}
	} else {
		next := requestElement(req.RID, req.ClientID, req.ReplyTo, body, req.Headers, scratch, req.Step+1)
		if _, err := repo.Enqueue(t, p.queues[i+1], next, "", nil); err != nil {
			t.Abort()
			return err
		}
	}
	if crashPt("beforeCommit") {
		t.Abort()
		return ErrCrashed
	}
	if cfg.LockInheritance && !last {
		// Bequeath: move this transaction's locks to the request's bucket
		// just before commit, so commit's lock release frees nothing and
		// the next stage inherits.
		repo.Locks().Transfer(t.ID(), lockBucket(req.RID))
	}
	if err := t.Commit(); err != nil {
		return err
	}
	if crashPt("afterCommit") {
		return ErrCrashed
	}
	return nil
}
