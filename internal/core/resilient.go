package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
	rlog "repro/internal/obs/log"
	"repro/internal/obs/trace"
	"repro/internal/queue"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// BackoffPolicy shapes the delay between recovery attempts: capped
// exponential growth with jitter, so a herd of recovering clients doesn't
// stampede a freshly restarted queue manager.
type BackoffPolicy struct {
	// Initial is the first delay (default 5ms).
	Initial time.Duration
	// Max caps the delay (default 2s).
	Max time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter fraction (default 0.2).
	Jitter float64
}

func (p BackoffPolicy) withDefaults() BackoffPolicy {
	if p.Initial <= 0 {
		p.Initial = 5 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.2
	}
	return p
}

// ResilientConfig configures a ResilientClerk.
type ResilientConfig struct {
	// Clerk configures the underlying clerk (queue names, client id,
	// tracer, receive wait).
	Clerk ClerkConfig
	// Backoff shapes the retry delays; zero fields take defaults.
	Backoff BackoffPolicy
	// MaxAttempts bounds the attempts per operation; 0 means unbounded —
	// the operation retries until its context ends, which is the paper's
	// model: the client keeps trying until the system recovers.
	MaxAttempts int
	// Metrics receives clerk.recoveries and rpc.retries; nil creates a
	// private registry.
	Metrics *obs.Registry
	// Seed seeds the jitter source; 0 derives one from the clock.
	Seed int64
	// Reconnect, when set, is called during recovery to obtain a fresh
	// connection (re-dialing a failed-over address, or re-binding to a
	// restarted in-process repository). nil keeps the original conn —
	// right for rpc-backed conns, which redial internally per call.
	Reconnect func(ctx context.Context) (QMConn, error)
	// Hedge, when set, enables hedged Transceives: a request in flight
	// longer than the trigger delay is cloned to alternate queues and the
	// first committed reply wins (DESIGN.md §11). nil disables hedging.
	Hedge *HedgePolicy
	// Log receives recovery events (masked failures, reconnects). Nil
	// disables logging.
	Log *rlog.Logger
}

// ResilientClerk wraps the clerk with the paper's client recovery run
// automatically: on any retryable (transport-class) failure it backs off,
// re-Connects, resynchronizes from the registration tags, and then —
// exactly as fig. 2 prescribes — Receives a still-outstanding request,
// Rereceives an already-received reply, or resubmits a request that never
// made it to the queue. Transceive therefore returns exactly-once results
// across server crashes, partitions, and dial refusals, bounded only by
// the caller's context.
//
// Failures the protocol cannot mask — application errors from the server
// (RemoteError → StatusError replies are still delivered as replies),
// protocol violations, context expiry — surface to the caller unchanged.
//
// A ResilientClerk serves one client goroutine, like the Clerk it wraps.
// It does not support interactive (intermediate-I/O) requests.
type ResilientClerk struct {
	qm  QMConn
	cfg ResilientConfig
	rng *rand.Rand

	inner         *Clerk
	connected     bool
	everConnected bool

	curRID string
	origin trace.Ref // root "submit" span of the current rid's first attempt

	mRecoveries *obs.Counter
	mRetries    *obs.Counter
	mFailovers  *obs.Counter

	hedge *hedgeState // nil unless cfg.Hedge is set
}

// NewResilientClerk returns a disconnected resilient clerk. Connect is
// optional: the first Transceive connects on demand.
func NewResilientClerk(qm QMConn, cfg ResilientConfig) *ResilientClerk {
	cfg.Backoff = cfg.Backoff.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.Hedge != nil {
		// Hedged receives must tolerate duplicate replies from clones whose
		// cancellation lost the race: filter every dequeue by rid.
		cfg.Clerk.FilterReplies = true
	}
	r := &ResilientClerk{
		qm:          qm,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(seed)),
		mRecoveries: reg.Counter("clerk.recoveries"),
		mRetries:    reg.Counter("rpc.retries"),
		mFailovers:  reg.Counter("clerk.failovers"),
	}
	if cfg.Hedge != nil {
		r.hedge = newHedgeState(cfg.Hedge, qm, reg)
	}
	return r
}

// State exposes the underlying clerk's state (Disconnected before the
// first successful Connect).
func (r *ResilientClerk) State() ClientState {
	if r.inner == nil {
		return StateDisconnected
	}
	return r.inner.State()
}

// ReplyQueue returns the clerk's private reply queue name.
func (r *ResilientClerk) ReplyQueue() string {
	if r.cfg.Clerk.ReplyQueue != "" {
		return r.cfg.Clerk.ReplyQueue
	}
	return "reply." + r.cfg.Clerk.ClientID
}

// LastTrace returns the trace id of the current request's first submit —
// retries reuse it, so the whole masked failure is one tree.
func (r *ResilientClerk) LastTrace() trace.ID {
	if r.origin.Valid() {
		return r.origin.Trace
	}
	if r.inner != nil {
		return r.inner.LastTrace()
	}
	return trace.ID{}
}

// Recoveries reports how many times the clerk has run the recovery
// procedure (reconnect + resynchronize) since creation.
func (r *ResilientClerk) Recoveries() uint64 { return r.mRecoveries.Value() }

// Retries reports how many operation retries (including reconnect
// attempts) the clerk has performed since creation.
func (r *ResilientClerk) Retries() uint64 { return r.mRetries.Value() }

// Failovers reports how many recoveries were triggered by a fencing
// rejection — the old primary refusing to ack because a newer epoch
// exists — as opposed to plain transport failures.
func (r *ResilientClerk) Failovers() uint64 { return r.mFailovers.Value() }

// Connect establishes the session, retrying retryable failures with
// backoff. It is optional — operations connect on demand — but lets a
// caller inspect the resynchronisation info (fig. 2's branch).
func (r *ResilientClerk) Connect(ctx context.Context) (ConnectInfo, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := r.checkBudget(ctx, attempt, lastErr); err != nil {
			return ConnectInfo{}, err
		}
		if attempt > 0 {
			r.mRetries.Inc()
			if err := r.sleep(ctx, attempt-1); err != nil {
				return ConnectInfo{}, err
			}
			r.refreshConn(ctx)
		}
		info, err := r.connectOnce(ctx)
		if err == nil {
			return info, nil
		}
		lastErr = err
		if !r.shouldRetry(err) {
			return ConnectInfo{}, err
		}
	}
}

// Disconnect deregisters cleanly. Not retried: a failed disconnect leaves
// registration state behind, which a later Connect resynchronizes from.
func (r *ResilientClerk) Disconnect(ctx context.Context) error {
	if r.inner == nil {
		return nil
	}
	r.connected = false
	return r.inner.Disconnect(ctx)
}

// Transceive submits rid and returns its reply exactly once, masking
// transport failures via automatic recovery. Safe to call again with the
// same rid after a failure (including a previous life's — the
// registration tags disambiguate); a new rid starts a new request.
//
// With a HedgePolicy configured, a request in flight longer than the
// trigger delay is additionally cloned to alternate queues and the first
// committed reply wins; exactly-once still holds (DESIGN.md §11).
func (r *ResilientClerk) Transceive(ctx context.Context, rid string, body []byte, headers map[string]string, ckpt []byte) (Reply, error) {
	if r.hedge != nil {
		return r.transceiveHedged(ctx, rid, body, headers, ckpt)
	}
	return r.transceiveUnhedged(ctx, rid, body, headers, ckpt)
}

// transceiveUnhedged is the single-arm fig. 2 loop — the primary arm of a
// hedged Transceive, and the whole story when hedging is off.
func (r *ResilientClerk) transceiveUnhedged(ctx context.Context, rid string, body []byte, headers map[string]string, ckpt []byte) (Reply, error) {
	if rid != r.curRID {
		r.curRID = rid
		r.origin = trace.Ref{}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := r.checkBudget(ctx, attempt, lastErr); err != nil {
			return Reply{}, err
		}
		if attempt > 0 {
			r.mRetries.Inc()
			if err := r.sleep(ctx, attempt-1); err != nil {
				return Reply{}, err
			}
		}
		if !r.connected {
			if err := r.recoverOrConnect(ctx, attempt, lastErr); err != nil {
				lastErr = err
				if !r.shouldRetry(err) {
					return Reply{}, err
				}
				continue
			}
		}
		rep, err := r.attempt(ctx, rid, body, headers, ckpt)
		if err == nil {
			return rep, nil
		}
		lastErr = err
		if !r.shouldRetry(err) {
			return Reply{}, err
		}
		// A shed (ErrBusy) or open breaker means the peer (or the path to
		// it) is known-alive-but-unavailable: back off without tearing the
		// session down. Anything else taints the connection — recover.
		if !errors.Is(err, rpc.ErrBusy) && !errors.Is(err, rpc.ErrCircuitOpen) {
			r.connected = false
		}
	}
}

// attempt runs one pass of fig. 2's decision procedure against a
// connected, resynchronized clerk.
func (r *ResilientClerk) attempt(ctx context.Context, rid string, body []byte, headers map[string]string, ckpt []byte) (Reply, error) {
	c := r.inner
	// A stale outstanding request from an rid the caller abandoned: its
	// reply must be drained before a new Send is legal (fig. 1).
	if c.State() == StateReqSent && c.sRID != rid {
		if _, err := c.Receive(ctx, nil); err != nil {
			return Reply{}, err
		}
	}
	switch {
	case c.State() == StateReqSent && c.sRID == rid:
		// The request is stably queued (perhaps the enqueue's ack was the
		// part that got lost); do not resubmit — wait for its reply.
		return c.Receive(ctx, ckpt)
	case c.State() == StateReplyRecvd && c.sRID == rid:
		// The reply was already dequeued but its delivery to us was lost;
		// re-read the QM's stable copy.
		return c.Rereceive(ctx)
	default:
		c.resubmit = r.origin
		err := c.Send(ctx, rid, body, headers)
		// Capture the first submit's root span even when the Send failed:
		// the span was recorded, and retries must parent under it.
		if !r.origin.Valid() && !c.lastTrace.IsZero() {
			r.origin = trace.Ref{Trace: c.lastTrace, Span: c.lastSpan}
		}
		if err != nil {
			return Reply{}, err
		}
		return c.Receive(ctx, ckpt)
	}
}

// recoverOrConnect (re)establishes the session. The first connection is
// not a recovery; anything after a working session counts one.
func (r *ResilientClerk) recoverOrConnect(ctx context.Context, attempt int, reason error) error {
	if !r.everConnected || reason == nil {
		_, err := r.connectOnce(ctx)
		return err
	}
	r.mRecoveries.Inc()
	if errors.Is(reason, replica.ErrFenced) {
		// Not a crash: the peer answered, telling us it was superseded.
		// The Reconnect factory's re-resolution lands on the promoted
		// standby (client-transparent promotion).
		r.mFailovers.Inc()
	}
	r.cfg.Log.Warn("clerk recovering session",
		rlog.Str("rid", r.curRID),
		rlog.Int("attempt", attempt),
		rlog.Err(reason),
		rlog.Trace(r.origin))
	tr := r.cfg.Clerk.Tracer
	if tr.Enabled() && r.origin.Valid() {
		// The recovery span parents under the original submit, so the
		// request's trace tree shows each masked failure.
		if sp, ok := tr.Begin(r.origin, "clerk.recover"); ok {
			sp.Annotate(trace.Int64("attempt", int64(attempt)), trace.Str("reason", reason.Error()))
			defer tr.Finish(&sp)
		}
	}
	r.refreshConn(ctx)
	_, err := r.connectOnce(ctx)
	return err
}

// connectOnce builds a fresh clerk (fresh FSM) and Connects it: the
// FSM of a failed life is abandoned, exactly as a restarted client
// program's in-memory state would be, and resynchronisation rebuilds it
// from the registration tags.
func (r *ResilientClerk) connectOnce(ctx context.Context) (ConnectInfo, error) {
	c := NewClerk(r.qm, r.cfg.Clerk)
	info, err := c.Connect(ctx)
	if err != nil {
		return ConnectInfo{}, err
	}
	r.inner = c
	r.connected = true
	r.everConnected = true
	return info, nil
}

// refreshConn swaps in a fresh connection from the Reconnect factory, if
// one is configured. A factory failure is ignored here: the subsequent
// Connect fails and drives another backoff round.
func (r *ResilientClerk) refreshConn(ctx context.Context) {
	if r.cfg.Reconnect == nil {
		return
	}
	if qm, err := r.cfg.Reconnect(ctx); err == nil && qm != nil {
		r.qm = qm
	}
}

// shouldRetry: transport-class failures (rpc taxonomy) always; a closed
// or stopped repository only when a Reconnect factory can replace it;
// everything else — application errors, protocol violations, context
// expiry — is terminal.
func (r *ResilientClerk) shouldRetry(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if rpc.Retryable(err) {
		return true
	}
	if r.cfg.Reconnect != nil && (errors.Is(err, queue.ErrClosed) || errors.Is(err, queue.ErrStopped)) {
		return true
	}
	if r.cfg.Reconnect != nil && errors.Is(err, replica.ErrFenced) {
		// A fenced ex-primary: a promoted standby exists somewhere, and
		// only a Reconnect factory can re-resolve to it.
		return true
	}
	return false
}

// checkBudget enforces ctx and MaxAttempts at the top of a retry loop.
func (r *ResilientClerk) checkBudget(ctx context.Context, attempt int, lastErr error) error {
	if r.cfg.MaxAttempts > 0 && attempt >= r.cfg.MaxAttempts {
		return fmt.Errorf("core: %d attempts exhausted: %w", attempt, lastErr)
	}
	if err := ctx.Err(); err != nil {
		if lastErr != nil {
			return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
		}
		return err
	}
	return nil
}

// delay computes the nth (0-based) backoff delay.
func (r *ResilientClerk) delay(n int) time.Duration {
	p := r.cfg.Backoff
	d := float64(p.Initial)
	for i := 0; i < n && d < float64(p.Max); i++ {
		d *= p.Multiplier
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	d *= 1 + p.Jitter*(2*r.rng.Float64()-1)
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

func (r *ResilientClerk) sleep(ctx context.Context, n int) error {
	t := time.NewTimer(r.delay(n))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
