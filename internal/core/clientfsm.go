package core

import "fmt"

// ClientState is a state of the client's state-transition diagram: fig. 1
// for non-interactive requests, extended with the Intermediate-I/O state of
// fig. 7 for interactive requests.
type ClientState int8

const (
	// StateDisconnected: no session with the system.
	StateDisconnected ClientState = iota
	// StateConnected: Connect returned; resynchronisation pending.
	StateConnected
	// StateReqSent: a request is outstanding.
	StateReqSent
	// StateReplyRecvd: the last request's reply has been received; a new
	// request may be entered.
	StateReplyRecvd
	// StateIntermediateIO: intermediate output received; the system awaits
	// intermediate input (fig. 7).
	StateIntermediateIO
)

func (s ClientState) String() string {
	switch s {
	case StateDisconnected:
		return "Disconnected"
	case StateConnected:
		return "Connected"
	case StateReqSent:
		return "Req-Sent"
	case StateReplyRecvd:
		return "Reply-Recvd"
	case StateIntermediateIO:
		return "Intermediate-I/O"
	default:
		return fmt.Sprintf("ClientState(%d)", int8(s))
	}
}

// ClientEvent is an edge label of the client state machine.
type ClientEvent int8

const (
	// EvConnect: the Connect operation.
	EvConnect ClientEvent = iota
	// EvResyncReqSent: Connect's rids show an outstanding request.
	EvResyncReqSent
	// EvResyncReplyRecvd: Connect's rids show no outstanding request.
	EvResyncReplyRecvd
	// EvSend: the Send operation (a new request).
	EvSend
	// EvReceive: the Receive operation returned the final reply.
	EvReceive
	// EvReceiveIntermediate: the Receive operation returned intermediate
	// output (interactive requests, fig. 7).
	EvReceiveIntermediate
	// EvSendIntermediate: intermediate input sent (fig. 7).
	EvSendIntermediate
	// EvRereceive: the Rereceive operation.
	EvRereceive
	// EvCancel: Cancel-last-request succeeded (the request will never
	// execute; the client may enter a new request).
	EvCancel
	// EvDisconnect: the Disconnect operation.
	EvDisconnect
)

func (e ClientEvent) String() string {
	switch e {
	case EvConnect:
		return "Connect"
	case EvResyncReqSent:
		return "Resync→Req-Sent"
	case EvResyncReplyRecvd:
		return "Resync→Reply-Recvd"
	case EvSend:
		return "Send"
	case EvReceive:
		return "Receive"
	case EvReceiveIntermediate:
		return "Receive(intermediate)"
	case EvSendIntermediate:
		return "Send(intermediate)"
	case EvRereceive:
		return "Rereceive"
	case EvCancel:
		return "Cancel"
	case EvDisconnect:
		return "Disconnect"
	default:
		return fmt.Sprintf("ClientEvent(%d)", int8(e))
	}
}

// clientTransitions is the legal-transition table of figs. 1 and 7.
var clientTransitions = map[ClientState]map[ClientEvent]ClientState{
	StateDisconnected: {
		EvConnect: StateConnected,
	},
	StateConnected: {
		EvResyncReqSent:    StateReqSent,
		EvResyncReplyRecvd: StateReplyRecvd,
		EvDisconnect:       StateDisconnected,
	},
	StateReqSent: {
		EvReceive:             StateReplyRecvd,
		EvReceiveIntermediate: StateIntermediateIO,
		EvCancel:              StateReplyRecvd,
	},
	StateIntermediateIO: {
		EvSendIntermediate: StateReqSent,
	},
	StateReplyRecvd: {
		EvSend:       StateReqSent,
		EvRereceive:  StateReplyRecvd,
		EvDisconnect: StateDisconnected,
	},
}

// ClientFSM validates that an implementation follows the paper's client
// state machine. The clerk embeds one and rejects out-of-order operations.
type ClientFSM struct {
	state ClientState
}

// NewClientFSM starts in Disconnected.
func NewClientFSM() *ClientFSM { return &ClientFSM{state: StateDisconnected} }

// State returns the current state.
func (f *ClientFSM) State() ClientState { return f.state }

// Fire applies an event, failing if it is illegal in the current state.
func (f *ClientFSM) Fire(ev ClientEvent) error {
	next, ok := clientTransitions[f.state][ev]
	if !ok {
		return fmt.Errorf("core: illegal client transition %s in state %s", ev, f.state)
	}
	f.state = next
	return nil
}

// Can reports whether the event is legal in the current state.
func (f *ClientFSM) Can(ev ClientEvent) bool {
	_, ok := clientTransitions[f.state][ev]
	return ok
}
