package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/queue"
)

// --- client side: interactive sessions (Section 8.1, fig. 7) ---

// InteractiveSession drives an interactive request through the fig. 7
// state machine on top of a clerk: Send, then alternate Receive
// (intermediate output) / SendInput (intermediate input) until the final
// reply.
type InteractiveSession struct {
	clerk   *Clerk
	baseRID string
	round   int
	state   []byte // conversation scratch from the last intermediate output
}

// Interactive starts an interactive session for baseRID. Each intermediate
// input is a fresh request (rid "<base>#<round>") — the
// pseudo-conversational mapping of Section 8.2.
func (c *Clerk) Interactive(baseRID string) *InteractiveSession {
	return &InteractiveSession{clerk: c, baseRID: baseRID}
}

// Resume rebuilds a session mid-conversation after a client failure, from
// the rid recovered at Connect ("<base>#<round>").
func (c *Clerk) ResumeInteractive(recoveredRID string) *InteractiveSession {
	base := recoveredRID
	round := 0
	if i := strings.IndexByte(recoveredRID, '#'); i >= 0 {
		base = recoveredRID[:i]
		fmt.Sscanf(recoveredRID[i+1:], "%d", &round)
	}
	return &InteractiveSession{clerk: c, baseRID: base, round: round}
}

// Start submits the interactive request.
func (s *InteractiveSession) Start(ctx context.Context, body []byte) error {
	return s.clerk.Send(ctx, s.baseRID, body, nil)
}

// Receive waits for the next message of the conversation. done is true
// when rep is the final reply; otherwise rep is intermediate output and
// the caller must SendInput next.
func (s *InteractiveSession) Receive(ctx context.Context, ckpt []byte) (rep Reply, done bool, err error) {
	rep, err = s.clerk.Receive(ctx, ckpt)
	if err != nil {
		return Reply{}, false, err
	}
	if rep.Intermediate {
		s.state = rep.ScratchPad
		s.round = rep.Step
		return rep, false, nil
	}
	return rep, true, nil
}

// SendInput supplies intermediate input: a request for the next
// transaction of the pseudo-conversation, carrying the conversation state
// back to the (stateless) server in its scratch pad.
func (s *InteractiveSession) SendInput(ctx context.Context, input []byte) error {
	s.round++
	rid := fmt.Sprintf("%s#%d", s.baseRID, s.round)
	return s.clerk.SendIntermediate(ctx, rid, input, s.state, s.round)
}

// --- server side: pseudo-conversational transactions (Section 8.2) ---

// ConvHandler runs one round of a conversation. state is nil on the first
// round and otherwise the newState of the previous round (carried via the
// queue elements' scratch pads — IMS's scratch pad, Section 9). Returning
// done=false emits output as intermediate output and awaits input;
// done=true emits output as the final reply.
type ConvHandler func(rc *ReqCtx, state, input []byte, round int) (newState, output []byte, done bool, err error)

// ConvServerConfig configures a pseudo-conversational server.
type ConvServerConfig struct {
	Repo    *queue.Repository
	Queue   string
	Name    string
	Handler ConvHandler
}

// ServeConversational runs the pseudo-conversational loop: each round of
// the conversation is one transaction of a serial multi-transaction
// request, so every intermediate input is reliably captured the moment the
// round commits (Section 8.2).
func ServeConversational(ctx context.Context, cfg ConvServerConfig) error {
	if cfg.Name == "" {
		cfg.Name = "conv." + cfg.Queue
	}
	repo := cfg.Repo
	if _, _, err := repo.Register(cfg.Queue, cfg.Name, false); err != nil {
		return err
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		err := convOne(ctx, cfg)
		switch {
		case err == nil:
		case errors.Is(err, queue.ErrClosed):
			return nil
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return nil
		default:
		}
	}
}

func convOne(ctx context.Context, cfg ConvServerConfig) error {
	repo := cfg.Repo
	t := repo.Begin()
	el, err := repo.Dequeue(ctx, t, cfg.Queue, cfg.Name, queue.DequeueOpts{Wait: true})
	if err != nil {
		t.Abort()
		return err
	}
	req, err := parseRequest(&el)
	if err != nil {
		t.Abort()
		return err
	}
	state := req.ScratchPad
	if req.Step == 0 {
		state = nil // first round: body is the original request
	}
	newState, output, done, herr := cfg.Handler(&ReqCtx{Ctx: ctx, Txn: t, Repo: repo, Request: req}, state, req.Body, req.Step)
	var appErr *AppError
	status := StatusOK
	switch {
	case herr == nil:
	case errors.As(herr, &appErr):
		status = StatusError
		output = []byte(appErr.Msg)
		done = true
	default:
		t.Abort()
		return fmt.Errorf("core: conversation handler: %w", herr)
	}
	if req.ReplyTo != "" {
		var rep queue.Element
		if done {
			rep = replyElement(req.RID, status, output, false, nil, 0)
		} else {
			rep = replyElement(req.RID, status, output, true, newState, req.Step)
		}
		if _, err := repo.Enqueue(t, req.ReplyTo, rep, "", nil); err != nil {
			t.Abort()
			return err
		}
	}
	return t.Commit()
}

// --- the Section 8.3 alternative: one transaction, logged I/O replay ---

// ConvChannel is the out-of-band message path of the single-transaction
// conversational implementation: a pair of volatile queues ("ordinary
// messages") between the executing transaction and the client. Nothing on
// it is transaction-protected — which is exactly why intermediate I/O can
// be lost on abort and why the client must log it (Section 8.3).
type ConvChannel struct {
	Repo *queue.Repository
	Out  string // server → client intermediate output
	In   string // client → server intermediate input
}

// NewConvChannel creates the volatile queue pair for one client.
func NewConvChannel(repo *queue.Repository, clientID string) (*ConvChannel, error) {
	ch := &ConvChannel{
		Repo: repo,
		Out:  "conv.out." + clientID,
		In:   "conv.in." + clientID,
	}
	for _, q := range []string{ch.Out, ch.In} {
		if err := repo.CreateQueue(queue.QueueConfig{Name: q, Volatile: true}); err != nil && !errors.Is(err, queue.ErrExists) {
			return nil, err
		}
	}
	return ch, nil
}

// Ask sends intermediate output and blocks for the matching input; called
// by the server handler mid-transaction. The messages are labelled with
// the request's eid and round so the client's log can replay (Section
// 8.3).
func (ch *ConvChannel) Ask(ctx context.Context, eid queue.EID, round int, output []byte) ([]byte, error) {
	out := queue.Element{
		Body: output,
		Headers: map[string]string{
			"eid":   fmt.Sprintf("%d", eid),
			hdrStep: fmt.Sprintf("%d", round),
		},
	}
	if _, err := ch.Repo.Enqueue(nil, ch.Out, out, "", nil); err != nil {
		return nil, err
	}
	in, err := ch.Repo.Dequeue(ctx, nil, ch.In, "", queue.DequeueOpts{
		Wait: true,
		HeaderMatch: map[string]string{
			"eid":   fmt.Sprintf("%d", eid),
			hdrStep: fmt.Sprintf("%d", round),
		},
	})
	if err != nil {
		return nil, err
	}
	return in.Body, nil
}

// IOLog is the client-side intermediate-I/O log of Section 8.3: every
// output/input pair is recorded, labelled with the request's eid; on a
// replay (the interactive transaction aborted and restarted), logged
// inputs are re-used as long as the replayed outputs match, and the log's
// remaining suffix is discarded on the first divergence.
type IOLog struct {
	entries map[queue.EID][]ioEntry
}

type ioEntry struct {
	output []byte
	input  []byte
}

// NewIOLog returns an empty log.
func NewIOLog() *IOLog { return &IOLog{entries: make(map[queue.EID][]ioEntry)} }

// Answer resolves the input for (eid, round, output): a matching logged
// entry replays its input (replayed=true); a diverging entry truncates the
// log and falls through; otherwise ask is invoked for fresh input, which
// is logged.
func (l *IOLog) Answer(eid queue.EID, round int, output []byte, ask func() []byte) (input []byte, replayed bool) {
	log := l.entries[eid]
	if round < len(log) {
		if bytes.Equal(log[round].output, output) {
			return log[round].input, true
		}
		// Divergence: "discard the remaining logged intermediate input".
		l.entries[eid] = log[:round]
	}
	in := ask()
	l.entries[eid] = append(l.entries[eid], ioEntry{
		output: append([]byte(nil), output...),
		input:  append([]byte(nil), in...),
	})
	return in, false
}

// Forget drops a request's log once its final reply is processed.
func (l *IOLog) Forget(eid queue.EID) { delete(l.entries, eid) }

// Len returns the number of logged rounds for a request.
func (l *IOLog) Len(eid queue.EID) int { return len(l.entries[eid]) }

// ConvClientLoop services the client end of a single-transaction
// conversation: it answers every Ask for the given request eid using the
// I/O log, until ctx ends. A nil ilog disables logging — every input, even
// on a replayed attempt, is re-solicited from the user (the unlogged
// baseline of Section 8.3). replays counts inputs served from the log
// (i.e., not re-solicited) — the measure of what logging saves across
// server aborts.
func (ch *ConvChannel) ConvClientLoop(ctx context.Context, eid queue.EID, ilog *IOLog, ask func(round int, output []byte) []byte, replays *int) error {
	for {
		out, err := ch.Repo.Dequeue(ctx, nil, ch.Out, "", queue.DequeueOpts{
			Wait:        true,
			HeaderMatch: map[string]string{"eid": fmt.Sprintf("%d", eid)},
		})
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil
			}
			return err
		}
		round := 0
		fmt.Sscanf(out.Headers[hdrStep], "%d", &round)
		var input []byte
		if ilog == nil {
			input = ask(round, out.Body)
		} else {
			var replayed bool
			input, replayed = ilog.Answer(eid, round, out.Body, func() []byte { return ask(round, out.Body) })
			if replayed && replays != nil {
				*replays++
			}
		}
		in := queue.Element{
			Body: input,
			Headers: map[string]string{
				"eid":   fmt.Sprintf("%d", eid),
				hdrStep: fmt.Sprintf("%d", round),
			},
		}
		if _, err := ch.Repo.Enqueue(nil, ch.In, in, "", nil); err != nil {
			return err
		}
	}
}
