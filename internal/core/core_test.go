package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chaos"
	"repro/internal/queue"
	"repro/internal/queue/qservice"
	"repro/internal/rpc"
)

// --- client FSM ---

func TestClientFSMHappyPath(t *testing.T) {
	f := NewClientFSM()
	steps := []struct {
		ev   ClientEvent
		want ClientState
	}{
		{EvConnect, StateConnected},
		{EvResyncReplyRecvd, StateReplyRecvd},
		{EvSend, StateReqSent},
		{EvReceive, StateReplyRecvd},
		{EvSend, StateReqSent},
		{EvReceiveIntermediate, StateIntermediateIO},
		{EvSendIntermediate, StateReqSent},
		{EvReceive, StateReplyRecvd},
		{EvRereceive, StateReplyRecvd},
		{EvDisconnect, StateDisconnected},
	}
	for _, s := range steps {
		if err := f.Fire(s.ev); err != nil {
			t.Fatalf("Fire(%s): %v", s.ev, err)
		}
		if f.State() != s.want {
			t.Fatalf("after %s: state %s, want %s", s.ev, f.State(), s.want)
		}
	}
}

func TestClientFSMIllegalMoves(t *testing.T) {
	f := NewClientFSM()
	illegal := []ClientEvent{EvSend, EvReceive, EvRereceive, EvDisconnect, EvSendIntermediate}
	for _, ev := range illegal {
		if err := f.Fire(ev); err == nil {
			t.Fatalf("Fire(%s) from Disconnected succeeded", ev)
		}
	}
	if f.State() != StateDisconnected {
		t.Fatalf("failed fire moved state to %s", f.State())
	}
	// Double connect.
	if err := f.Fire(EvConnect); err != nil {
		t.Fatal(err)
	}
	if err := f.Fire(EvConnect); err == nil {
		t.Fatal("double Connect allowed")
	}
	// Receive without a request.
	if err := f.Fire(EvResyncReplyRecvd); err != nil {
		t.Fatal(err)
	}
	if err := f.Fire(EvReceive); err == nil {
		t.Fatal("Receive without Send allowed")
	}
}

func TestQuickFSMNeverReachesUnknownState(t *testing.T) {
	known := map[ClientState]bool{
		StateDisconnected: true, StateConnected: true, StateReqSent: true,
		StateReplyRecvd: true, StateIntermediateIO: true,
	}
	f := func(events []byte) bool {
		fsm := NewClientFSM()
		for _, b := range events {
			ev := ClientEvent(b % 10)
			_ = fsm.Fire(ev) // illegal events must be rejected, not applied
			if !known[fsm.State()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// --- system model plumbing ---

type sysEnv struct {
	repo   *queue.Repository
	server *Server
	cancel context.CancelFunc
	done   chan error
}

// echoHandler replies with "echo:" + body and records per-rid execution
// counts in the shared database — the exactly-once witness.
func echoHandler(rc *ReqCtx) ([]byte, error) {
	key := rc.Request.RID
	v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "execs", key, true)
	if err != nil {
		return nil, err
	}
	n := 0
	if v != nil {
		n, _ = strconv.Atoi(string(v))
	}
	if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "execs", key, []byte(strconv.Itoa(n+1))); err != nil {
		return nil, err
	}
	return append([]byte("echo:"), rc.Request.Body...), nil
}

func newSysEnv(t *testing.T, crash *chaos.Points) *sysEnv {
	t.Helper()
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req", ErrorQueue: "req.err", RetryLimit: 5}); err != nil {
		t.Fatal(err)
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req.err"}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Repo: repo, Queue: "req", Name: "server-1", Handler: echoHandler, Crash: crash})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	e := &sysEnv{repo: repo, server: srv, cancel: cancel, done: make(chan error, 1)}
	go func() { e.done <- srv.Serve(ctx) }()
	return e
}

// restartServer starts a fresh Serve goroutine after an injected crash.
func (e *sysEnv) restartServer(t *testing.T, ctx context.Context) {
	t.Helper()
	go func() { e.done <- e.server.Serve(ctx) }()
}

func execCount(t *testing.T, repo *queue.Repository, rid string) int {
	t.Helper()
	v, ok, err := repo.KVGet(context.Background(), nil, "execs", rid, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		return 0
	}
	n, _ := strconv.Atoi(string(v))
	return n
}

// --- end-to-end non-interactive requests (figs. 4–5) ---

func TestEndToEndLocal(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: "c1", RequestQueue: "req"})
	info, err := clerk.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.SRID != "" || info.Outstanding {
		t.Fatalf("fresh connect info = %+v", info)
	}
	if err := clerk.Send(ctx, "rid-1", []byte("hello"), nil); err != nil {
		t.Fatal(err)
	}
	rep, err := clerk.Receive(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RID != "rid-1" || string(rep.Body) != "echo:hello" || rep.IsError() {
		t.Fatalf("reply %+v", rep)
	}
	if n := execCount(t, e.repo, "rid-1"); n != 1 {
		t.Fatalf("executions = %d", n)
	}
	if err := clerk.Disconnect(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndRemote(t *testing.T) {
	e := newSysEnv(t, nil)
	rsrv := rpc.NewServer()
	qservice.New(e.repo, rsrv)
	addr, err := rsrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rsrv.Close)
	qc := qservice.NewClient(rpc.NewClient(addr, nil))
	t.Cleanup(qc.Close)

	ctx := context.Background()
	clerk := NewClerk(qc, ClerkConfig{ClientID: "remote-1", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := clerk.Transceive(ctx, "rid-9", []byte("over-the-wire"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != "echo:over-the-wire" {
		t.Fatalf("reply %q", rep.Body)
	}
}

func TestRequestReplyMatchingAcrossClients(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	const clients = 5
	const perClient = 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			clientID := fmt.Sprintf("client-%d", c)
			clerk := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: clientID, RequestQueue: "req"})
			if _, err := clerk.Connect(ctx); err != nil {
				t.Errorf("%s connect: %v", clientID, err)
				return
			}
			for i := 0; i < perClient; i++ {
				rid := fmt.Sprintf("%s-r%d", clientID, i)
				body := fmt.Sprintf("%s payload %d", clientID, i)
				rep, err := clerk.Transceive(ctx, rid, []byte(body), nil, nil)
				if err != nil {
					t.Errorf("%s transceive: %v", clientID, err)
					return
				}
				if rep.RID != rid {
					t.Errorf("%s: reply rid %q for request %q", clientID, rep.RID, rid)
					return
				}
				if string(rep.Body) != "echo:"+body {
					t.Errorf("%s: cross-wired reply %q", clientID, rep.Body)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestClientResyncOutstandingRequest(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: "c1", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-5", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	// Client crashes here (drop the clerk). A new incarnation reconnects.
	clerk2 := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: "c1", RequestQueue: "req"})
	info, err := clerk2.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Outstanding || info.SRID != "rid-5" {
		t.Fatalf("resync info = %+v", info)
	}
	if clerk2.State() != StateReqSent {
		t.Fatalf("state = %s", clerk2.State())
	}
	rep, err := clerk2.Receive(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RID != "rid-5" || string(rep.Body) != "echo:x" {
		t.Fatalf("reply %+v", rep)
	}
	// Exactly once despite the client crash.
	if n := execCount(t, e.repo, "rid-5"); n != 1 {
		t.Fatalf("executions = %d", n)
	}
}

func TestClientResyncAfterReplyReceived(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: "c1", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-7", []byte("y"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := clerk.Receive(ctx, []byte("my-ckpt")); err != nil {
		t.Fatal(err)
	}
	// Crash after receive, maybe before processing. Reconnect.
	clerk2 := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: "c1", RequestQueue: "req"})
	info, err := clerk2.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Outstanding {
		t.Fatalf("info = %+v, want settled", info)
	}
	if info.SRID != "rid-7" || info.RRID != "rid-7" {
		t.Fatalf("rids = %q/%q", info.SRID, info.RRID)
	}
	if string(info.Ckpt) != "my-ckpt" {
		t.Fatalf("ckpt = %q", info.Ckpt)
	}
	// The client decides it didn't process the reply: Rereceive.
	rep, err := clerk2.Rereceive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RID != "rid-7" || string(rep.Body) != "echo:y" {
		t.Fatalf("rereceive %+v", rep)
	}
	// Still exactly one execution.
	if n := execCount(t, e.repo, "rid-7"); n != 1 {
		t.Fatalf("executions = %d", n)
	}
}

func TestAppErrorStillExactlyOnce(t *testing.T) {
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	var attempts sync.Map
	srv, err := NewServer(ServerConfig{Repo: repo, Queue: "req", Handler: func(rc *ReqCtx) ([]byte, error) {
		n, _ := attempts.LoadOrStore(rc.Request.RID, new(int))
		*(n.(*int))++
		return nil, Failf("insufficient funds for %s", rc.Request.RID)
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go srv.Serve(ctx)

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := clerk.Transceive(ctx, "rid-1", []byte("debit"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IsError() {
		t.Fatalf("reply %+v, want error status", rep)
	}
	if string(rep.Body) != "insufficient funds for rid-1" {
		t.Fatalf("error body %q", rep.Body)
	}
	// The failed attempt committed: no retry happened.
	n, _ := attempts.Load("rid-1")
	if *(n.(*int)) != 1 {
		t.Fatalf("attempts = %d, want 1 (failed attempts are still exactly-once)", *(n.(*int)))
	}
}

func TestPoisonRequestDivertsToErrorQueue(t *testing.T) {
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req", ErrorQueue: "req.err", RetryLimit: 3}); err != nil {
		t.Fatal(err)
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req.err"}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Repo: repo, Queue: "req", Handler: func(rc *ReqCtx) ([]byte, error) {
		if string(rc.Request.Body) == "poison" {
			return nil, errors.New("server bug: crash on this input")
		}
		return []byte("ok"), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go srv.Serve(ctx)

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	// The poison request cannot produce a reply; it must terminate in the
	// error queue (no cyclic restart, Section 5) and the server must keep
	// serving later requests.
	if err := clerk.Send(ctx, "rid-poison", []byte("poison"), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d, _ := repo.Depth("req.err"); d == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poison request never diverted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A healthy client still gets service.
	clerk2 := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c2", RequestQueue: "req"})
	if _, err := clerk2.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := clerk2.Transceive(ctx, "rid-good", []byte("fine"), nil, nil)
	if err != nil || string(rep.Body) != "ok" {
		t.Fatalf("healthy request after poison: %q %v", rep.Body, err)
	}
	if st := srv.Stats(); st.Aborts < 3 {
		t.Fatalf("aborts = %d, want >= 3", st.Aborts)
	}
}

func TestCancelBeforeExecution(t *testing.T) {
	// No server running: the request sits in the queue and can be killed.
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-1", []byte("cancel me"), nil); err != nil {
		t.Fatal(err)
	}
	if err := clerk.CancelLastRequest(ctx); err != nil {
		t.Fatal(err)
	}
	if clerk.State() != StateReplyRecvd {
		t.Fatalf("state after cancel = %s", clerk.State())
	}
	if d, _ := repo.Depth("req"); d != 0 {
		t.Fatalf("request still queued: depth %d", d)
	}
	// The client can immediately enter a new request.
	if err := clerk.Send(ctx, "rid-2", []byte("next"), nil); err != nil {
		t.Fatal(err)
	}
}

func TestCancelAfterExecutionFails(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-1", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	// Let the server consume it.
	deadline := time.Now().Add(5 * time.Second)
	for execCount(t, e.repo, "rid-1") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never processed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	err := clerk.CancelLastRequest(ctx)
	if !errors.Is(err, ErrNotCancelable) {
		t.Fatalf("cancel after execution: %v", err)
	}
	// The real reply is still there for the client.
	rep, err := clerk.Receive(ctx, nil)
	if err != nil || rep.RID != "rid-1" {
		t.Fatalf("reply after failed cancel: %+v %v", rep, err)
	}
}

func TestSequentialClientHappyPath(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	var processed []int
	sc := &SequentialClient{
		QM:    &LocalConn{Repo: e.repo},
		Cfg:   ClerkConfig{ClientID: "seq-1", RequestQueue: "req"},
		Total: 10,
		Body:  func(i int) []byte { return []byte(fmt.Sprintf("work-%d", i)) },
		ProcessReply: func(i int, rep Reply) {
			processed = append(processed, i)
		},
	}
	if err := sc.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if len(processed) != 10 {
		t.Fatalf("processed %v", processed)
	}
	for i, p := range processed {
		if p != i {
			t.Fatalf("order %v", processed)
		}
	}
	for i := 0; i < 10; i++ {
		if n := execCount(t, e.repo, ridFor(i)); n != 1 {
			t.Fatalf("rid %d executed %d times", i, n)
		}
	}
}

// TestExactlyOnceUnderClientCrashes is the paper's central guarantee under
// a storm of client crashes at every protocol step: each request executes
// exactly once, each reply is processed at least once.
func TestExactlyOnceUnderClientCrashes(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	const total = 30
	crash := chaos.NewPoints(1234)
	crash.FailWithProb("client.beforeSend", 0.15, 0)
	crash.FailWithProb("client.afterSend", 0.15, 0)
	crash.FailWithProb("client.afterReceive", 0.15, 0)
	crash.FailWithProb("client.afterProcess", 0.15, 0)

	processCount := make(map[int]int)
	sc := &SequentialClient{
		QM:    &LocalConn{Repo: e.repo},
		Cfg:   ClerkConfig{ClientID: "chaos-client", RequestQueue: "req"},
		Total: total,
		Body:  func(i int) []byte { return []byte(fmt.Sprintf("w%d", i)) },
		ProcessReply: func(i int, rep Reply) {
			processCount[i]++
		},
		Crash: crash,
	}
	crashes, err := sc.RunToCompletion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if crashes == 0 {
		t.Fatal("chaos schedule produced no crashes; test is vacuous")
	}
	t.Logf("survived %d client crashes", crashes)
	for i := 0; i < total; i++ {
		if n := execCount(t, e.repo, ridFor(i)); n != 1 {
			t.Errorf("request %d executed %d times, want exactly 1", i, n)
		}
		if processCount[i] < 1 {
			t.Errorf("reply %d processed %d times, want at least 1", i, processCount[i])
		}
	}
}

// TestExactlyOnceUnderServerCrashes injects server crashes at every point
// of the fig. 5 loop.
func TestExactlyOnceUnderServerCrashes(t *testing.T) {
	crash := chaos.NewPoints(777)
	crash.FailWithProb("server.afterDequeue", 0.1, 0)
	crash.FailWithProb("server.beforeReply", 0.1, 0)
	crash.FailWithProb("server.beforeCommit", 0.1, 0)
	e := newSysEnv(t, crash)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	// Supervisor: restart the server whenever it crashes.
	supDone := make(chan struct{})
	go func() {
		defer close(supDone)
		for {
			select {
			case err := <-e.done:
				if errors.Is(err, ErrCrashed) {
					e.restartServer(t, ctx)
					continue
				}
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	const total = 30
	processCount := make(map[int]int)
	sc := &SequentialClient{
		QM:    &LocalConn{Repo: e.repo},
		Cfg:   ClerkConfig{ClientID: "c", RequestQueue: "req", ReceiveWait: 500 * time.Millisecond},
		Total: total,
		Body:  func(i int) []byte { return []byte(fmt.Sprintf("w%d", i)) },
		ProcessReply: func(i int, rep Reply) {
			processCount[i]++
		},
	}
	runCtx, runCancel := context.WithTimeout(ctx, 60*time.Second)
	defer runCancel()
	if _, err := sc.RunToCompletion(runCtx); err != nil {
		t.Fatal(err)
	}
	if crash.TotalFired() == 0 {
		t.Fatal("no server crashes fired; test is vacuous")
	}
	t.Logf("server crashed %d times", crash.TotalFired())
	for i := 0; i < total; i++ {
		if n := execCount(t, e.repo, ridFor(i)); n != 1 {
			t.Errorf("request %d executed %d times, want exactly 1", i, n)
		}
		if processCount[i] < 1 {
			t.Errorf("reply %d processed %d times", i, processCount[i])
		}
	}
}

// TestExactlyOnceUnderNodeCrashes crashes the whole repository (queue
// manager + server node) and recovers it from the log mid-workload.
func TestExactlyOnceUnderNodeCrashes(t *testing.T) {
	dir := t.TempDir()
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req", ErrorQueue: "req.err", RetryLimit: 10}); err != nil {
		t.Fatal(err)
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req.err"}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(55))
	const total = 25
	processCount := make(map[int]int)
	done := make(chan struct{})

	var mu sync.Mutex // guards repo swap
	currentRepo := func() *queue.Repository {
		mu.Lock()
		defer mu.Unlock()
		return repo
	}

	// The QM/server node: serve until crashed externally.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startNode := func(r *queue.Repository) {
		srv, err := NewServer(ServerConfig{Repo: r, Queue: "req", Handler: echoHandler})
		if err != nil {
			t.Error(err)
			return
		}
		go srv.Serve(ctx)
	}
	startNode(repo)

	// Crash the node a few times while the client works.
	go func() {
		defer close(done)
		for k := 0; k < 4; k++ {
			time.Sleep(time.Duration(50+rng.Intn(150)) * time.Millisecond)
			mu.Lock()
			repo.Crash()
			r2, _, err := queue.Open(dir, queue.Options{NoFsync: true})
			if err != nil {
				mu.Unlock()
				t.Error(err)
				return
			}
			repo = r2
			mu.Unlock()
			startNode(r2)
		}
	}()

	// The client retries Run across node crashes: a crashed repository
	// surfaces as ErrClosed errors, which the client treats like losing
	// connectivity — reconnect and resynchronize.
	sc := &SequentialClient{
		Total: total,
		Cfg:   ClerkConfig{ClientID: "c", RequestQueue: "req", ReceiveWait: 300 * time.Millisecond},
		Body:  func(i int) []byte { return []byte(fmt.Sprintf("w%d", i)) },
		ProcessReply: func(i int, rep Reply) {
			processCount[i]++
		},
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		sc.QM = &LocalConn{Repo: currentRepo()}
		err := sc.Run(ctx)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workload never completed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	<-done
	final := currentRepo()
	defer final.Close()
	for i := 0; i < total; i++ {
		if n := execCount(t, final, ridFor(i)); n != 1 {
			t.Errorf("request %d executed %d times, want exactly 1", i, n)
		}
		if processCount[i] < 1 {
			t.Errorf("reply %d processed %d times", i, processCount[i])
		}
	}
}

func TestLoadSharingAcrossServerInstances(t *testing.T) {
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	// Three server instances share one queue (Section 1's load sharing).
	servers := make([]*Server, 3)
	for i := range servers {
		srv, err := NewServer(ServerConfig{Repo: repo, Queue: "req", Name: fmt.Sprintf("s%d", i),
			Handler: func(rc *ReqCtx) ([]byte, error) {
				time.Sleep(time.Millisecond)
				return echoHandler(rc)
			}})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		go srv.Serve(ctx)
	}
	// Batch-feed the queue so all instances have simultaneous work; the
	// handler takes ~1ms so a single instance cannot race through alone.
	const total = 30
	for i := 0; i < total; i++ {
		e := NewRequestElement(fmt.Sprintf("rid-%d", i), "batch", "", []byte("x"), nil)
		if _, err := repo.Enqueue(nil, "req", e, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		sum := uint64(0)
		for _, s := range servers {
			sum += s.Stats().Processed
		}
		if sum == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d processed", sum, total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	busy := 0
	for _, s := range servers {
		if s.Stats().Processed > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("work not shared: only %d instances busy", busy)
	}
}

func TestOneWaySendMode(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{
		ClientID: "ow", RequestQueue: "req", OneWaySend: true,
	})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-1", []byte("fire and forget"), nil); err != nil {
		t.Fatal(err)
	}
	// The request element id is unknown after a one-way Send, so
	// cancellation is impossible — the documented trade.
	if err := clerk.CancelLastRequest(ctx); !errors.Is(err, ErrNotCancelable) {
		t.Fatalf("cancel after one-way send: %v", err)
	}
	rep, err := clerk.Receive(ctx, nil)
	if err != nil || rep.RID != "rid-1" {
		t.Fatalf("reply %+v %v", rep, err)
	}
	// The tag was still recorded: reconnect recovers the rid and eid.
	clerk2 := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: "ow", RequestQueue: "req"})
	info, err := clerk2.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.SRID != "rid-1" || info.Outstanding {
		t.Fatalf("info after one-way session: %+v", info)
	}
}

func TestReceiveIllegalWithoutSend(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := clerk.Receive(ctx, nil); !errors.Is(err, ErrNoOutstanding) {
		t.Fatalf("Receive without Send: %v", err)
	}
	// Send while a request is outstanding is illegal too.
	if err := clerk.Send(ctx, "rid-1", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-2", nil, nil); err == nil {
		t.Fatal("second Send with request outstanding allowed")
	}
}

func TestRereceiveBeforeAnyReceiveFails(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: "fresh", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := clerk.Rereceive(ctx); err == nil {
		t.Fatal("Rereceive with no prior Receive succeeded")
	}
}

func TestDisconnectWithOutstandingRequestIllegal(t *testing.T) {
	e := newSysEnv(t, nil)
	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: e.repo}, ClerkConfig{ClientID: "c9", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-1", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Disconnect(ctx); err == nil {
		t.Fatal("Disconnect in Req-Sent allowed")
	}
	// Receive the reply; now disconnect is legal.
	if _, err := clerk.Receive(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Disconnect(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockVictimRetriesViaQueue: two server instances take KV locks in
// opposite orders and deadlock; the lock manager kills one victim, whose
// transaction aborts — and the queue machinery retries the request until
// it succeeds. The deadlock is thus invisible to clients: both requests
// complete exactly once.
func TestDeadlockVictimRetriesViaQueue(t *testing.T) {
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req", ErrorQueue: "req.err", RetryLimit: 50}); err != nil {
		t.Fatal(err)
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req.err"}); err != nil {
		t.Fatal(err)
	}
	// A rendezvous that makes the first attempts collide: each request
	// locks its own account, waits for the other to have done the same,
	// then locks the other's account. Later (retry) attempts find the
	// barrier closed and just proceed, so they cannot deadlock again.
	var barrier sync.WaitGroup
	barrier.Add(2)
	var once1, once2 sync.Once
	firstMeeting := make(chan struct{})
	go func() { barrier.Wait(); close(firstMeeting) }()

	handler := func(rc *ReqCtx) ([]byte, error) {
		mine := string(rc.Request.Body)
		other := "acctB"
		onc := &once1
		if mine == "acctB" {
			other = "acctA"
			onc = &once2
		}
		if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "acct", mine, []byte("locked")); err != nil {
			return nil, err
		}
		onc.Do(barrier.Done)
		select {
		case <-firstMeeting:
		case <-time.After(2 * time.Second):
		}
		if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "acct", other, []byte("locked")); err != nil {
			return nil, err // deadlock victim: abort and retry via the queue
		}
		return []byte("both locked by " + mine), nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < 2; i++ {
		srv, err := NewServer(ServerConfig{Repo: repo, Queue: "req", Name: fmt.Sprintf("s%d", i), Handler: handler})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ctx)
	}
	// Two concurrent clients, one request each.
	var wg sync.WaitGroup
	for _, acct := range []string{"acctA", "acctB"} {
		wg.Add(1)
		go func(acct string) {
			defer wg.Done()
			clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "dl-" + acct, RequestQueue: "req"})
			if _, err := clerk.Connect(ctx); err != nil {
				t.Errorf("%s: %v", acct, err)
				return
			}
			rep, err := clerk.Transceive(ctx, "rid-"+acct, []byte(acct), nil, nil)
			if err != nil {
				t.Errorf("%s: %v", acct, err)
				return
			}
			if rep.IsError() {
				t.Errorf("%s: error reply %s", acct, rep.Body)
			}
		}(acct)
	}
	wg.Wait()
	// No request fell into the error queue: the deadlock resolved by
	// victim-retry, not by poisoning.
	if d, _ := repo.Depth("req.err"); d != 0 {
		t.Fatalf("%d requests poisoned by deadlock", d)
	}
	if st := repo.Locks().Stats(); st.Deadlocks == 0 {
		t.Fatal("no deadlock occurred; test is vacuous")
	}
}
