package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/queue"
	"repro/internal/txn"
)

// Fork/join for multi-transaction requests (Section 6): "The main issue is
// forking a request into multiple requests and rejoining the requests when
// the concurrent branches complete. This can be handled by extending the
// QM with a trigger mechanism. A trigger is set to send a request when all
// of the replies to earlier concurrent requests have been received."
//
// Fork enqueues one sub-request per branch, each replying into a dedicated
// join staging queue, and installs a QM trigger that fires a continuation
// request when all replies have arrived. The staging queue, the branch
// requests, and the trigger are all durable, so a crash anywhere between
// fork and join recovers: branch replies re-accumulate, and the trigger
// fires at recovery (RecheckTriggers) if its condition was already met.

// BranchReq is one branch of a fork.
type BranchReq struct {
	// Queue is the branch server's input queue.
	Queue string
	// Body is the branch's request body.
	Body []byte
	// Headers are extra application headers.
	Headers map[string]string
}

// joinQueueName returns the staging queue for a fork's replies.
func joinQueueName(rid string) string { return "join." + rid }

// Fork fans the request rid out to the branches and arranges for
// continuation (a request element) to be enqueued into contQueue once
// every branch reply has arrived in the join staging queue. Branch rids
// are "<rid>&<i>". The branch enqueues run in one transaction; the trigger
// is installed after it commits. If a failure strikes between the two,
// re-running Fork's trigger step is safe: CreateTrigger with the same id
// simply reinstates it and fires immediately when the condition already
// holds.
func Fork(repo *queue.Repository, rid, clientID string, branches []BranchReq, contQueue string, continuation queue.Element) error {
	if len(branches) == 0 {
		return errors.New("core: fork needs branches")
	}
	staging := joinQueueName(rid)
	if err := repo.CreateQueue(queue.QueueConfig{Name: staging}); err != nil && !errors.Is(err, queue.ErrExists) {
		return err
	}
	t := repo.Begin()
	for i, b := range branches {
		sub := requestElement(fmt.Sprintf("%s&%d", rid, i), clientID, staging, b.Body, b.Headers, nil, 0)
		if _, err := repo.Enqueue(t, b.Queue, sub, "", nil); err != nil {
			t.Abort()
			return fmt.Errorf("core: fork branch %d: %w", i, err)
		}
	}
	if err := t.Commit(); err != nil {
		return fmt.Errorf("core: fork commit: %w", err)
	}
	continuation.Queue = contQueue
	if err := repo.CreateTrigger("join."+rid, staging, int32(len(branches)), continuation); err != nil {
		return fmt.Errorf("core: fork trigger: %w", err)
	}
	return nil
}

// CollectJoin drains the k branch replies from the fork's staging queue
// inside t, returning them ordered by branch index. The continuation
// server calls it when the trigger's request arrives.
func CollectJoin(ctx context.Context, t *txn.Txn, repo *queue.Repository, rid string, k int) ([]Reply, error) {
	staging := joinQueueName(rid)
	replies := make([]Reply, 0, k)
	for i := 0; i < k; i++ {
		el, err := repo.Dequeue(ctx, t, staging, "", queue.DequeueOpts{Wait: true})
		if err != nil {
			return nil, fmt.Errorf("core: join collect: %w", err)
		}
		rep, err := parseReply(&el)
		if err != nil {
			return nil, err
		}
		replies = append(replies, rep)
	}
	sort.Slice(replies, func(a, b int) bool { return replies[a].RID < replies[b].RID })
	return replies, nil
}

// DestroyJoin removes a fork's staging queue after the continuation
// committed (it is empty by then).
func DestroyJoin(repo *queue.Repository, rid string) error {
	err := repo.DestroyQueue(joinQueueName(rid))
	if errors.Is(err, queue.ErrNoQueue) {
		return nil
	}
	return err
}
