package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/queue"
	"repro/internal/rpc"
)

// faultMode scripts one injected failure on a flakyConn operation.
type faultMode int

const (
	// faultAfter performs the operation, then reports a transport failure
	// — the ack/reply-lost case: the effect happened, the caller can't
	// know.
	faultAfter faultMode = iota
	// faultBefore fails without performing — the request-lost case.
	faultBefore
	// faultBusy returns the admission-control shed without performing.
	faultBusy
)

// flakyConn wraps a QMConn with scripted per-operation faults, consumed
// FIFO. It deterministically reproduces the three loss cases the
// recovery protocol distinguishes (Section 3 / fig. 2).
type flakyConn struct {
	QMConn
	mu     sync.Mutex
	faults map[string][]faultMode // op → pending faults
}

func newFlakyConn(inner QMConn) *flakyConn {
	return &flakyConn{QMConn: inner, faults: make(map[string][]faultMode)}
}

func (f *flakyConn) script(op string, modes ...faultMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[op] = append(f.faults[op], modes...)
}

// next pops the next scripted fault for op, if any.
func (f *flakyConn) next(op string) (faultMode, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	q := f.faults[op]
	if len(q) == 0 {
		return 0, false
	}
	f.faults[op] = q[1:]
	return q[0], true
}

func transportErr(op string) error {
	return &rpc.TransportError{Op: op, Err: errors.New("scripted fault")}
}

func (f *flakyConn) Enqueue(ctx context.Context, qname string, e queue.Element, registrant string, tag []byte) (queue.EID, error) {
	if mode, ok := f.next("enqueue"); ok {
		switch mode {
		case faultBefore:
			return 0, transportErr("write")
		case faultBusy:
			return 0, rpc.ErrBusy
		case faultAfter:
			if _, err := f.QMConn.Enqueue(ctx, qname, e, registrant, tag); err != nil {
				return 0, err
			}
			return 0, transportErr("call")
		}
	}
	return f.QMConn.Enqueue(ctx, qname, e, registrant, tag)
}

func (f *flakyConn) Dequeue(ctx context.Context, qname, registrant string, tag []byte, wait time.Duration, match map[string]string) (queue.Element, error) {
	if mode, ok := f.next("dequeue"); ok {
		switch mode {
		case faultBefore:
			return queue.Element{}, transportErr("write")
		case faultBusy:
			return queue.Element{}, rpc.ErrBusy
		case faultAfter:
			// Perform the dequeue — committing it server-side — but lose
			// the element on the way back.
			if _, err := f.QMConn.Dequeue(ctx, qname, registrant, tag, wait, match); err != nil {
				return queue.Element{}, err
			}
			return queue.Element{}, transportErr("call")
		}
	}
	return f.QMConn.Dequeue(ctx, qname, registrant, tag, wait, match)
}

func (f *flakyConn) Register(ctx context.Context, qname, registrant string, stable bool) (queue.RegInfo, error) {
	if mode, ok := f.next("register"); ok && mode == faultBefore {
		return queue.RegInfo{}, transportErr("dial")
	}
	return f.QMConn.Register(ctx, qname, registrant, stable)
}

func resilientEnv(t *testing.T) (*sysEnv, *flakyConn, *obs.Registry) {
	t.Helper()
	e := newSysEnv(t, nil)
	return e, newFlakyConn(&LocalConn{Repo: e.repo}), obs.NewRegistry()
}

func newResilient(fc *flakyConn, reg *obs.Registry, tr *trace.Tracer) *ResilientClerk {
	return NewResilientClerk(fc, ResilientConfig{
		Clerk: ClerkConfig{ClientID: "rc1", RequestQueue: "req",
			ReceiveWait: 200 * time.Millisecond, Tracer: tr},
		Backoff: BackoffPolicy{Initial: time.Millisecond, Max: 10 * time.Millisecond},
		Metrics: reg,
		Seed:    1,
	})
}

// TestResilientLostEnqueueAckDoesNotDuplicate: the enqueue happens but
// its ack is lost. Recovery must see SRID==rid (outstanding) and wait for
// the reply instead of resubmitting — exactly one execution.
func TestResilientLostEnqueueAckDoesNotDuplicate(t *testing.T) {
	e, fc, reg := resilientEnv(t)
	fc.script("enqueue", faultAfter)
	rc := newResilient(fc, reg, nil)
	ctx := context.Background()

	rep, err := rc.Transceive(ctx, "rid-ack", []byte("a"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RID != "rid-ack" || string(rep.Body) != "echo:a" {
		t.Fatalf("reply %+v", rep)
	}
	if n := execCount(t, e.repo, "rid-ack"); n != 1 {
		t.Fatalf("executions = %d, want 1 (lost ack must not duplicate)", n)
	}
	if rc.Recoveries() == 0 {
		t.Fatal("expected at least one recovery")
	}
}

// TestResilientLostReplyRereceives: the reply dequeue commits but its
// delivery is lost. Recovery must see RRID==rid and Rereceive the QM's
// stable copy — one execution, reply still delivered.
func TestResilientLostReplyRereceives(t *testing.T) {
	e, fc, reg := resilientEnv(t)
	fc.script("dequeue", faultAfter)
	rc := newResilient(fc, reg, nil)
	ctx := context.Background()

	rep, err := rc.Transceive(ctx, "rid-rr", []byte("b"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RID != "rid-rr" || string(rep.Body) != "echo:b" {
		t.Fatalf("reply %+v", rep)
	}
	if n := execCount(t, e.repo, "rid-rr"); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
}

// TestResilientLostRequestResubmits: the enqueue never happens. Recovery
// must see SRID != rid and resubmit — one execution via the retry.
func TestResilientLostRequestResubmits(t *testing.T) {
	e, fc, reg := resilientEnv(t)
	fc.script("enqueue", faultBefore, faultBefore)
	rc := newResilient(fc, reg, nil)
	ctx := context.Background()

	rep, err := rc.Transceive(ctx, "rid-lost", []byte("c"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != "echo:c" {
		t.Fatalf("reply %+v", rep)
	}
	if n := execCount(t, e.repo, "rid-lost"); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
	if got := reg.Counter("rpc.retries").Value(); got < 2 {
		t.Fatalf("rpc.retries = %d, want >= 2", got)
	}
}

// TestResilientBusyBacksOffWithoutRecovery: a shed is not a connection
// failure — the clerk backs off and retries on the same session, so no
// recovery is counted.
func TestResilientBusyBacksOffWithoutRecovery(t *testing.T) {
	e, fc, reg := resilientEnv(t)
	fc.script("enqueue", faultBusy, faultBusy, faultBusy)
	rc := newResilient(fc, reg, nil)
	ctx := context.Background()

	rep, err := rc.Transceive(ctx, "rid-busy", []byte("d"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != "echo:d" {
		t.Fatalf("reply %+v", rep)
	}
	if n := execCount(t, e.repo, "rid-busy"); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
	if got := rc.Recoveries(); got != 0 {
		t.Fatalf("recoveries = %d, want 0 (busy is not a connection failure)", got)
	}
	if got := rc.Retries(); got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
}

// TestResilientSequentialRequests: several rids through one clerk, with a
// fault on each — every one exactly once, in order.
func TestResilientSequentialRequests(t *testing.T) {
	e, fc, reg := resilientEnv(t)
	rc := newResilient(fc, reg, nil)
	ctx := context.Background()
	rids := []string{"s-1", "s-2", "s-3", "s-4"}
	faults := [][]string{{"enqueue"}, {"dequeue"}, {"enqueue"}, {}}
	modes := []faultMode{faultAfter, faultAfter, faultBefore, 0}
	for i, rid := range rids {
		for _, op := range faults[i] {
			fc.script(op, modes[i])
		}
		rep, err := rc.Transceive(ctx, rid, []byte(rid), nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", rid, err)
		}
		if rep.RID != rid || string(rep.Body) != "echo:"+rid {
			t.Fatalf("%s: reply %+v", rid, rep)
		}
	}
	for _, rid := range rids {
		if n := execCount(t, e.repo, rid); n != 1 {
			t.Fatalf("%s: executions = %d, want 1", rid, n)
		}
	}
}

// TestResilientHonorsContext: with a permanently failing transport, the
// retry loop must end when the caller's context does.
func TestResilientHonorsContext(t *testing.T) {
	_, fc, reg := resilientEnv(t)
	for i := 0; i < 10000; i++ {
		fc.script("enqueue", faultBefore)
	}
	rc := newResilient(fc, reg, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := rc.Transceive(ctx, "rid-ctx", nil, nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// TestResilientMaxAttempts: the attempt budget bounds the loop even with
// an unbounded context.
func TestResilientMaxAttempts(t *testing.T) {
	e := newSysEnv(t, nil)
	fc := newFlakyConn(&LocalConn{Repo: e.repo})
	for i := 0; i < 100; i++ {
		fc.script("enqueue", faultBefore)
	}
	rc := NewResilientClerk(fc, ResilientConfig{
		Clerk:       ClerkConfig{ClientID: "rc2", RequestQueue: "req", ReceiveWait: 100 * time.Millisecond},
		Backoff:     BackoffPolicy{Initial: time.Millisecond, Max: 2 * time.Millisecond},
		MaxAttempts: 3,
		Seed:        1,
	})
	_, err := rc.Transceive(context.Background(), "rid-max", nil, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("want attempts-exhausted error, got %v", err)
	}
}

// TestResilientAppErrorIsDeliveredNotRetried: an application error is a
// committed StatusError reply — the request executed exactly once,
// unsuccessfully (Section 3) — so the resilient clerk delivers it rather
// than retrying.
func TestResilientAppErrorIsDeliveredNotRetried(t *testing.T) {
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	for _, q := range []string{"work", "work.err"} {
		if err := repo.CreateQueue(queue.QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(ServerConfig{Repo: repo, Queue: "work", Name: "failer",
		Handler: func(rc *ReqCtx) ([]byte, error) { return nil, Failf("boom") }})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go srv.Serve(ctx)

	rc := NewResilientClerk(newFlakyConn(&LocalConn{Repo: repo}), ResilientConfig{
		Clerk: ClerkConfig{ClientID: "rc3", RequestQueue: "work", ReceiveWait: 200 * time.Millisecond},
		Seed:  1,
	})
	rep, err := rc.Transceive(ctx, "rid-app", []byte("x"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IsError() {
		t.Fatalf("want StatusError reply, got %+v", rep)
	}
	if got := rc.Retries(); got != 0 {
		t.Fatalf("retries = %d, want 0 (app error is a delivered reply)", got)
	}
}

// TestResilientExactlyOnceDevice: the ExactlyOnceGuard protocol under
// automatic retries. The physical device (a ticket printer) must show
// exactly one effect when the clerk retries through a failure between
// the reply dequeue committing and the reply being processed — the
// worst spot (Section 3): the reply is consumed but its effect hasn't
// happened yet.
func TestResilientExactlyOnceDevice(t *testing.T) {
	e, fc, reg := resilientEnv(t)
	printer := device.NewTicketPrinter()
	guard := &device.ExactlyOnceGuard{Device: printer}
	ctx := context.Background()
	cfg := ResilientConfig{
		Clerk:   ClerkConfig{ClientID: "teller", RequestQueue: "req", ReceiveWait: 200 * time.Millisecond},
		Backoff: BackoffPolicy{Initial: time.Millisecond, Max: 10 * time.Millisecond},
		Metrics: reg,
		Seed:    1,
	}

	// Life 1: the reply dequeue commits but its delivery is lost; the
	// clerk auto-recovers and Rereceives. Then the client "crashes"
	// before printing — after the dequeue, before the physical effect.
	fc.script("dequeue", faultAfter)
	rc1 := NewResilientClerk(fc, cfg)
	rep, err := rc1.Transceive(ctx, "tick-1", []byte("ticket"), nil, guard.Ckpt())
	if err != nil {
		t.Fatal(err)
	}
	if rc1.Recoveries() == 0 {
		t.Fatal("expected an automatic recovery in life 1")
	}
	_ = rep // crashed before printing

	// Life 2: reconnect. The recovered ckpt equals the device state (no
	// print happened), so the reply must be processed — once.
	rc2 := NewResilientClerk(fc, cfg)
	info, err := rc2.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.RRID != "tick-1" {
		t.Fatalf("resync RRID = %q, want tick-1", info.RRID)
	}
	if guard.AlreadyProcessed(info.Ckpt) {
		t.Fatal("guard claims processed before any print")
	}
	rep, err = rc2.Transceive(ctx, "tick-1", []byte("ticket"), nil, guard.Ckpt())
	if err != nil {
		t.Fatal(err)
	}
	printer.Print(string(rep.Body))

	// Life 3: crash after printing. The device state moved past the
	// recovered ckpt, so the guard forbids reprocessing.
	rc3 := NewResilientClerk(fc, cfg)
	info, err = rc3.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !guard.AlreadyProcessed(info.Ckpt) {
		t.Fatal("guard must report the reply as already processed")
	}

	if n := printer.Count(); n != 1 {
		t.Fatalf("physical prints = %d, want exactly 1", n)
	}
	if n := execCount(t, e.repo, "tick-1"); n != 1 {
		t.Fatalf("server executions = %d, want 1", n)
	}
}

// TestResilientRetryTraceContinuity: a resubmission must reuse the
// original trace id and parent a submit.retry (and clerk.recover) span
// under the original submit, so one tree tells the whole story.
func TestResilientRetryTraceContinuity(t *testing.T) {
	e, fc, reg := resilientEnv(t)
	_ = e
	tr := trace.New(1024, reg)
	fc.script("enqueue", faultBefore)
	rc := newResilient(fc, reg, tr)
	ctx := context.Background()
	if _, err := rc.Transceive(ctx, "rid-tr", []byte("t"), nil, nil); err != nil {
		t.Fatal(err)
	}
	id := rc.LastTrace()
	if id.IsZero() {
		t.Fatal("no trace id recorded")
	}
	names := map[string]int{}
	var walk func(nodes []*trace.Node)
	walk = func(nodes []*trace.Node) {
		for _, n := range nodes {
			names[n.Span.Name]++
			walk(n.Children)
		}
	}
	roots := tr.Trace(id)
	walk(roots)
	if names["submit"] != 1 {
		t.Fatalf("submit spans = %d, want 1 (tree: %v)", names["submit"], names)
	}
	if names["submit.retry"] != 1 {
		t.Fatalf("submit.retry spans = %d, want 1 (tree: %v)", names["submit.retry"], names)
	}
	if names["clerk.recover"] != 1 {
		t.Fatalf("clerk.recover spans = %d, want 1 (tree: %v)", names["clerk.recover"], names)
	}
	// All under ONE root: the original submit.
	if len(roots) != 1 || roots[0].Span.Name != "submit" {
		t.Fatalf("trace roots: got %d (first %q), want the single original submit",
			len(roots), roots[0].Span.Name)
	}
}
