package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/queue"
	"repro/internal/txn"
)

// ErrAppLockHeld reports that another request holds the application lock.
var ErrAppLockHeld = errors.New("core: application lock held")

// AppLocks is the paper's alternative to lock inheritance for serializable
// multi-transaction requests: "the application can mimic database system
// locking by creating a persistent database of locks, setting the
// appropriate locks for each database object it accesses, and releasing
// all of these application locks just before the final transaction of the
// multi-transaction request commits" (Section 6).
//
// Locks are rows in a repository table (owner = the request's rid), so
// they are durable across crashes — with exactly the cost the paper
// predicts: every acquire and release is a logged database update.
type AppLocks struct {
	// Repo hosts the lock table.
	Repo *queue.Repository
	// Table is the lock table name; empty means "applocks".
	Table string
}

func (a *AppLocks) table() string {
	if a.Table == "" {
		return "applocks"
	}
	return a.Table
}

// Acquire takes (or re-takes, idempotently) the application lock on
// resource for owner, inside t. A lock held by a different owner fails
// with ErrAppLockHeld — the caller aborts and retries via the queue.
func (a *AppLocks) Acquire(ctx context.Context, t *txn.Txn, resource, owner string) error {
	cur, ok, err := a.Repo.KVGet(ctx, t, a.table(), resource, true)
	if err != nil {
		return err
	}
	if ok && string(cur) != owner {
		return fmt.Errorf("%w: %s by %s", ErrAppLockHeld, resource, cur)
	}
	if ok {
		return nil // re-entrant
	}
	return a.Repo.KVSet(ctx, t, a.table(), resource, []byte(owner))
}

// Release frees one application lock held by owner, inside t.
func (a *AppLocks) Release(ctx context.Context, t *txn.Txn, resource, owner string) error {
	cur, ok, err := a.Repo.KVGet(ctx, t, a.table(), resource, true)
	if err != nil {
		return err
	}
	if !ok || string(cur) != owner {
		return fmt.Errorf("core: application lock %s not held by %s", resource, owner)
	}
	return a.Repo.KVDelete(ctx, t, a.table(), resource)
}

// ReleaseAll frees a set of application locks in the final transaction of
// the multi-transaction request.
func (a *AppLocks) ReleaseAll(ctx context.Context, t *txn.Txn, owner string, resources []string) error {
	for _, r := range resources {
		if err := a.Release(ctx, t, r, owner); err != nil {
			return err
		}
	}
	return nil
}

// Holder reports the current holder of resource ("" if free); diagnostic.
func (a *AppLocks) Holder(ctx context.Context, resource string) string {
	v, ok, err := a.Repo.KVGet(ctx, nil, a.table(), resource, false)
	if err != nil || !ok {
		return ""
	}
	return string(v)
}
