package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/enc"
)

// SequentialClient is the fig. 2 client program as a reusable component: a
// fault-tolerant sequential program that submits a numbered sequence of
// requests, each exactly once, and processes each reply at least once —
// with no stable storage of its own. Its entire durable state is the queue
// manager's persistent registration: the rid of its last Send, the rid of
// its last received reply, and the checkpoint it piggybacked on its last
// Receive (Sections 2–3).
//
// Run may be interrupted by injected crashes (returning ErrCrashed with
// all volatile state lost); calling Run again resumes correctly from the
// registration, re-executing fig. 2's connect-time resynchronisation.
type SequentialClient struct {
	// QM connects to the queue manager.
	QM QMConn
	// Cfg configures the underlying clerk.
	Cfg ClerkConfig
	// Total is the number of requests to submit.
	Total int
	// Body builds the i-th request body.
	Body func(i int) []byte
	// ProcessReply consumes the reply to request i; it is invoked at least
	// once per reply (possibly again after a crash — the paper's
	// at-least-once guarantee).
	ProcessReply func(i int, rep Reply)
	// Crash, when set, is consulted at the client's crash points:
	// "client.beforeSend", "client.afterSend", "client.afterReceive",
	// "client.afterProcess".
	Crash *chaos.Points
}

func ridFor(i int) string { return fmt.Sprintf("rid-%06d", i) }

// ridIndex recovers i from "rid-<i>"; interactive step suffixes ("#n") are
// ignored.
func ridIndex(rid string) (int, bool) {
	rid, _, _ = strings.Cut(rid, "#")
	s, ok := strings.CutPrefix(rid, "rid-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return n, true
}

// ckptFor encodes the client's tiny state — the index whose reply it is
// about to process — piggybacked on each Receive (Section 2: "the client
// can piggyback its state with its enqueue and dequeue operations").
func ckptFor(i int) []byte {
	b := enc.NewBuffer(8)
	b.Uvarint(uint64(i))
	return b.Bytes()
}

func ckptIndex(ckpt []byte) (int, bool) {
	if len(ckpt) == 0 {
		return 0, false
	}
	r := enc.NewReader(ckpt)
	v := r.Uvarint()
	if r.Err() != nil {
		return 0, false
	}
	return int(v), true
}

func (s *SequentialClient) crash(point string) bool {
	return s.Crash != nil && s.Crash.Hit(point)
}

// Run executes (or resumes) the fig. 2 program. It returns nil when all
// Total replies have been processed, ErrCrashed on an injected crash, or
// the first real error.
func (s *SequentialClient) Run(ctx context.Context) error {
	clerk := NewClerk(s.QM, s.Cfg)
	info, err := clerk.Connect(ctx)
	if err != nil {
		return err
	}

	// Fig. 2 lines 2–11: resynchronize.
	next := 0 // index of the next request to send
	switch {
	case info.Outstanding:
		// A request is outstanding: receive (and process) its reply.
		i, ok := ridIndex(info.SRID)
		if !ok {
			return fmt.Errorf("core: unintelligible recovered rid %q", info.SRID)
		}
		rep, err := clerk.Receive(ctx, ckptFor(i))
		if err != nil {
			return err
		}
		if s.crash("client.afterReceive") {
			return ErrCrashed
		}
		s.ProcessReply(i, rep)
		if s.crash("client.afterProcess") {
			return ErrCrashed
		}
		next = i + 1
	case info.SRID != "" && info.SRID == info.RRID:
		// The reply was received before the failure; the client cannot
		// tell whether it processed it, so it processes it again
		// (at-least-once, Section 3).
		i, ok := ridIndex(info.SRID)
		if !ok {
			return fmt.Errorf("core: unintelligible recovered rid %q", info.SRID)
		}
		rep, err := clerk.Rereceive(ctx)
		if err != nil {
			return err
		}
		s.ProcessReply(i, rep)
		if s.crash("client.afterProcess") {
			return ErrCrashed
		}
		next = i + 1
	default:
		// Fresh client.
		next = 0
	}
	_ = info.Ckpt // the index is recoverable from the rids alone here

	// Fig. 2 main loop: while there's work to do.
	for i := next; i < s.Total; i++ {
		if s.crash("client.beforeSend") {
			return ErrCrashed
		}
		body := []byte(nil)
		if s.Body != nil {
			body = s.Body(i)
		}
		if err := clerk.Send(ctx, ridFor(i), body, nil); err != nil {
			return err
		}
		if s.crash("client.afterSend") {
			return ErrCrashed
		}
		rep, err := clerk.Receive(ctx, ckptFor(i))
		if err != nil {
			return err
		}
		if s.crash("client.afterReceive") {
			return ErrCrashed
		}
		s.ProcessReply(i, rep)
		if s.crash("client.afterProcess") {
			return ErrCrashed
		}
	}
	return clerk.Disconnect(ctx)
}

// RunToCompletion keeps re-running (crash, recover, resume) until the
// workload finishes or ctx ends; it returns the number of crashes
// survived. A non-crash error aborts the run.
func (s *SequentialClient) RunToCompletion(ctx context.Context) (crashes int, err error) {
	for {
		err := s.Run(ctx)
		if err == nil {
			return crashes, nil
		}
		if errors.Is(err, ErrCrashed) {
			crashes++
			continue
		}
		return crashes, err
	}
}
