// Package enc provides small, allocation-conscious binary encoding helpers
// shared by the write-ahead log, snapshot files, and the RPC wire format.
//
// The format is deliberately simple: unsigned varints for integers, and
// length-prefixed byte strings. All multi-byte fixed-width values are
// little-endian. Decoding is strict: every decode reports an error on
// truncated or malformed input instead of panicking, because the inputs may
// come from a torn log tail or from the network.
package enc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Errors returned by the decoder.
var (
	// ErrShortBuffer reports that the input ended before a complete value.
	ErrShortBuffer = errors.New("enc: short buffer")
	// ErrOverflow reports a varint that does not fit the requested width.
	ErrOverflow = errors.New("enc: varint overflow")
	// ErrLength reports a length prefix that exceeds the remaining input.
	ErrLength = errors.New("enc: length prefix exceeds remaining input")
)

// Buffer is an append-only encoder. The zero value is ready to use.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{b: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The slice aliases the buffer's storage
// and is invalidated by further writes.
func (e *Buffer) Bytes() []byte { return e.b }

// Len returns the number of encoded bytes.
func (e *Buffer) Len() int { return len(e.b) }

// Reset truncates the buffer to empty, retaining its storage.
func (e *Buffer) Reset() { e.b = e.b[:0] }

// Uvarint appends v as an unsigned varint.
func (e *Buffer) Uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}

// Varint appends v as a zig-zag signed varint.
func (e *Buffer) Varint(v int64) {
	e.b = binary.AppendVarint(e.b, v)
}

// Uint8 appends a single byte.
func (e *Buffer) Uint8(v uint8) { e.b = append(e.b, v) }

// Uint32 appends a fixed-width little-endian uint32.
func (e *Buffer) Uint32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}

// Uint64 appends a fixed-width little-endian uint64.
func (e *Buffer) Uint64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

// Bool appends a boolean as one byte (0 or 1).
func (e *Buffer) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Bytes appends a length-prefixed byte string. A nil slice round-trips as an
// empty slice.
func (e *Buffer) BytesField(v []byte) {
	e.Uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

// String appends a length-prefixed string.
func (e *Buffer) String(v string) {
	e.Uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

// StringMap appends a map of strings as a count followed by key/value pairs.
// Iteration order of Go maps is randomized, so the encoding of a map is not
// canonical; decoders must not assume any pair order.
func (e *Buffer) StringMap(m map[string]string) {
	e.Uvarint(uint64(len(m)))
	for k, v := range m {
		e.String(k)
		e.String(v)
	}
}

// StringSlice appends a count-prefixed slice of strings.
func (e *Buffer) StringSlice(s []string) {
	e.Uvarint(uint64(len(s)))
	for _, v := range s {
		e.String(v)
	}
}

// TraceTail appends optional trace context as a self-delimiting tail:
// one marker byte 0 when id is all-zero (untraced), or marker 1
// followed by the 16 raw id bytes and the span as an unsigned varint.
// Paired with Reader.TraceTail, which treats *absent* bytes as
// untraced, this lets trace context ride at the end of pre-existing
// record formats (element blobs, redo records, snapshots) while
// pre-trace encodings keep decoding unchanged.
func (e *Buffer) TraceTail(id [16]byte, span uint64) {
	if id == ([16]byte{}) {
		e.Uint8(0)
		return
	}
	e.Uint8(1)
	e.b = append(e.b, id[:]...)
	e.Uvarint(span)
}

// Reader decodes values from a byte slice in the order they were appended.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first error encountered while decoding, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// fail records the first decode error and returns it.
func (r *Reader) fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrShortBuffer)
		} else {
			r.fail(ErrOverflow)
		}
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a zig-zag signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrShortBuffer)
		} else {
			r.fail(ErrOverflow)
		}
		return 0
	}
	r.off += n
	return v
}

// Uint8 decodes a single byte.
func (r *Reader) Uint8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Uint32 decodes a fixed-width little-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// Uint64 decodes a fixed-width little-endian uint64.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// Bool decodes a boolean byte. Any nonzero byte decodes as true.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// BytesField decodes a length-prefixed byte string. The returned slice is a
// copy and remains valid after the Reader's input is reused.
func (r *Reader) BytesField() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(ErrLength)
		return nil
	}
	if n > math.MaxInt32 {
		r.fail(ErrLength)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(ErrLength)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// StringMap decodes a map written by Buffer.StringMap. A zero-length map
// decodes as nil so that nil round-trips through empty.
func (r *Reader) StringMap() map[string]string {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(r.Remaining()) {
		// Each pair needs at least two length bytes; a count larger than the
		// remaining byte count is certainly corrupt.
		r.fail(ErrLength)
		return nil
	}
	m := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k := r.String()
		v := r.String()
		if r.err != nil {
			return nil
		}
		m[k] = v
	}
	return m
}

// StringSlice decodes a slice written by Buffer.StringSlice.
func (r *Reader) StringSlice() []string {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrLength)
		return nil
	}
	s := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s = append(s, r.String())
		if r.err != nil {
			return nil
		}
	}
	return s
}

// TraceTail decodes a tail written by Buffer.TraceTail. When the input
// is already exhausted (or a prior decode failed) it returns the zero
// id and span WITHOUT recording an error: a record that simply ends
// before the tail is an old-format record from a pre-trace WAL or
// snapshot, and decodes as untraced. A present but truncated or
// malformed tail is still an error.
func (r *Reader) TraceTail() (id [16]byte, span uint64) {
	if r.err != nil || r.Remaining() == 0 {
		return id, 0
	}
	switch marker := r.Uint8(); marker {
	case 0:
		return id, 0
	case 1:
		if r.off+16 > len(r.b) {
			r.fail(ErrShortBuffer)
			return [16]byte{}, 0
		}
		copy(id[:], r.b[r.off:r.off+16])
		r.off += 16
		span = r.Uvarint()
		if r.err != nil {
			return [16]byte{}, 0
		}
		return id, span
	default:
		r.fail(fmt.Errorf("enc: bad trace tail marker %d", marker))
		return [16]byte{}, 0
	}
}

// Finish reports an error if decoding failed or input remains. Use it when a
// message must be consumed exactly.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("enc: %d trailing bytes", r.Remaining())
	}
	return nil
}
