package enc

import (
	"bytes"
	"testing"
)

// FuzzReaderNeverPanics feeds arbitrary bytes through every decoder; the
// contract is error-or-value, never a panic or unbounded allocation.
func FuzzReaderNeverPanics(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	b := NewBuffer(0)
	b.Uvarint(3)
	b.String("seed")
	b.BytesField([]byte{1, 2, 3})
	b.StringMap(map[string]string{"k": "v"})
	f.Add(b.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		r.Uvarint()
		r.Varint()
		_ = r.String()
		r.BytesField()
		r.StringMap()
		r.StringSlice()
		r.Uint8()
		r.Uint32()
		r.Uint64()
		r.Bool()
		r.TraceTail()
		_ = r.Err()
		_ = r.Remaining()
	})
}

// FuzzTraceTailRoundTrip exercises the element-header trace-context
// tail. An element-like prefix (string body, uvarint field) is encoded,
// optionally followed by a trace tail; decoding must (a) round-trip the
// id/span exactly when a tail was written, and (b) decode the *same
// prefix without any tail* — an old-format record from a pre-trace
// WAL or snapshot — as untraced with no error.
func FuzzTraceTailRoundTrip(f *testing.F) {
	f.Add([]byte("body"), uint64(7), []byte("0123456789abcdef"), uint64(99), true)
	f.Add([]byte{}, uint64(0), []byte(""), uint64(0), true)            // zero id -> 1-byte tail
	f.Add([]byte("old"), uint64(3), []byte("x"), uint64(1), false)     // no tail at all
	f.Add([]byte("z"), uint64(1), make([]byte, 16), uint64(12), true)  // explicit zero id
	f.Fuzz(func(t *testing.T, body []byte, field uint64, idBytes []byte, span uint64, withTail bool) {
		var id [16]byte
		copy(id[:], idBytes)

		b := NewBuffer(0)
		b.BytesField(body)
		b.Uvarint(field)
		if withTail {
			b.TraceTail(id, span)
		}

		r := NewReader(b.Bytes())
		if got := r.BytesField(); !bytes.Equal(got, body) && !(len(got) == 0 && len(body) == 0) {
			t.Fatalf("body %v != %v", got, body)
		}
		if got := r.Uvarint(); got != field {
			t.Fatalf("field %d != %d", got, field)
		}
		gotID, gotSpan := r.TraceTail()
		if withTail && id != ([16]byte{}) {
			if gotID != id || gotSpan != span {
				t.Fatalf("tail (%x,%d) != (%x,%d)", gotID, gotSpan, id, span)
			}
		} else {
			// Old-format (no tail) and explicitly-untraced records both
			// decode as the zero id — and must not error.
			if gotID != ([16]byte{}) || gotSpan != 0 {
				t.Fatalf("untraced record decoded as (%x,%d)", gotID, gotSpan)
			}
		}
		if err := r.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzRoundTrip checks that any (string, bytes, uint) triple round-trips
// exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add("key", []byte("value"), uint64(42))
	f.Add("", []byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, s string, p []byte, u uint64) {
		b := NewBuffer(0)
		b.String(s)
		b.BytesField(p)
		b.Uvarint(u)
		r := NewReader(b.Bytes())
		if got := r.String(); got != s {
			t.Fatalf("string %q != %q", got, s)
		}
		if got := r.BytesField(); !bytes.Equal(got, p) && !(len(got) == 0 && len(p) == 0) {
			t.Fatalf("bytes %v != %v", got, p)
		}
		if got := r.Uvarint(); got != u {
			t.Fatalf("uvarint %d != %d", got, u)
		}
		if err := r.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}
