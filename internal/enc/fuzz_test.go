package enc

import (
	"bytes"
	"testing"
)

// FuzzReaderNeverPanics feeds arbitrary bytes through every decoder; the
// contract is error-or-value, never a panic or unbounded allocation.
func FuzzReaderNeverPanics(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	b := NewBuffer(0)
	b.Uvarint(3)
	b.String("seed")
	b.BytesField([]byte{1, 2, 3})
	b.StringMap(map[string]string{"k": "v"})
	f.Add(b.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		r.Uvarint()
		r.Varint()
		_ = r.String()
		r.BytesField()
		r.StringMap()
		r.StringSlice()
		r.Uint8()
		r.Uint32()
		r.Uint64()
		r.Bool()
		_ = r.Err()
		_ = r.Remaining()
	})
}

// FuzzRoundTrip checks that any (string, bytes, uint) triple round-trips
// exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add("key", []byte("value"), uint64(42))
	f.Add("", []byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, s string, p []byte, u uint64) {
		b := NewBuffer(0)
		b.String(s)
		b.BytesField(p)
		b.Uvarint(u)
		r := NewReader(b.Bytes())
		if got := r.String(); got != s {
			t.Fatalf("string %q != %q", got, s)
		}
		if got := r.BytesField(); !bytes.Equal(got, p) && !(len(got) == 0 && len(p) == 0) {
			t.Fatalf("bytes %v != %v", got, p)
		}
		if got := r.Uvarint(); got != u {
			t.Fatalf("uvarint %d != %d", got, u)
		}
		if err := r.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}
