package enc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	b := NewBuffer(64)
	b.Uvarint(0)
	b.Uvarint(math.MaxUint64)
	b.Varint(-1)
	b.Varint(math.MinInt64)
	b.Varint(math.MaxInt64)
	b.Uint8(0xab)
	b.Uint32(0xdeadbeef)
	b.Uint64(0x0102030405060708)
	b.Bool(true)
	b.Bool(false)

	r := NewReader(b.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Errorf("Uvarint = %d, want MaxUint64", got)
	}
	if got := r.Varint(); got != -1 {
		t.Errorf("Varint = %d, want -1", got)
	}
	if got := r.Varint(); got != math.MinInt64 {
		t.Errorf("Varint = %d, want MinInt64", got)
	}
	if got := r.Varint(); got != math.MaxInt64 {
		t.Errorf("Varint = %d, want MaxInt64", got)
	}
	if got := r.Uint8(); got != 0xab {
		t.Errorf("Uint8 = %#x, want 0xab", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 0x0102030405060708 {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := r.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestRoundTripComposite(t *testing.T) {
	b := NewBuffer(0)
	b.BytesField([]byte("hello"))
	b.BytesField(nil)
	b.String("world")
	b.String("")
	b.StringMap(map[string]string{"a": "1", "b": "2"})
	b.StringSlice([]string{"x", "", "z"})

	r := NewReader(b.Bytes())
	if got := r.BytesField(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("BytesField = %q", got)
	}
	if got := r.BytesField(); len(got) != 0 {
		t.Errorf("nil BytesField = %q, want empty", got)
	}
	if got := r.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	m := r.StringMap()
	if len(m) != 2 || m["a"] != "1" || m["b"] != "2" {
		t.Errorf("StringMap = %v", m)
	}
	s := r.StringSlice()
	if len(s) != 3 || s[0] != "x" || s[1] != "" || s[2] != "z" {
		t.Errorf("StringSlice = %v", s)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestBytesFieldIsCopy(t *testing.T) {
	b := NewBuffer(0)
	b.BytesField([]byte{1, 2, 3})
	raw := b.Bytes()
	r := NewReader(raw)
	got := r.BytesField()
	raw[1] = 0xff // clobber the underlying storage
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("decoded bytes alias input: %v", got)
	}
}

func TestTruncatedInputs(t *testing.T) {
	// Build a complete message, then verify every strict prefix fails to
	// decode cleanly rather than panicking or returning garbage silently.
	b := NewBuffer(0)
	b.Uvarint(300)
	b.String("abcdef")
	b.Uint64(42)
	full := b.Bytes()

	for n := 0; n < len(full); n++ {
		r := NewReader(full[:n])
		r.Uvarint()
		_ = r.String()
		r.Uint64()
		if r.Err() == nil {
			t.Fatalf("prefix len %d: expected decode error, got none", n)
		}
	}
}

func TestLengthPrefixBeyondInput(t *testing.T) {
	b := NewBuffer(0)
	b.Uvarint(1 << 40) // a huge claimed length with no payload
	r := NewReader(b.Bytes())
	if got := r.BytesField(); got != nil {
		t.Errorf("BytesField = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Fatal("expected error for oversized length prefix")
	}
}

func TestCorruptMapCount(t *testing.T) {
	b := NewBuffer(0)
	b.Uvarint(1 << 40)
	r := NewReader(b.Bytes())
	if m := r.StringMap(); m != nil {
		t.Errorf("StringMap = %v, want nil", m)
	}
	if r.Err() == nil {
		t.Fatal("expected error for corrupt map count")
	}
}

func TestErrorSticky(t *testing.T) {
	r := NewReader(nil)
	r.Uint64() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	r.Uint32()
	_ = r.String()
	if r.Err() != first {
		t.Errorf("error not sticky: %v != %v", r.Err(), first)
	}
}

func TestFinishTrailing(t *testing.T) {
	b := NewBuffer(0)
	b.Uint8(1)
	b.Uint8(2)
	r := NewReader(b.Bytes())
	r.Uint8()
	if err := r.Finish(); err == nil {
		t.Fatal("Finish should report trailing bytes")
	}
}

func TestReset(t *testing.T) {
	b := NewBuffer(0)
	b.String("abc")
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.Uint8(7)
	r := NewReader(b.Bytes())
	if got := r.Uint8(); got != 7 {
		t.Errorf("after reset Uint8 = %d", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

// quickMsg is an arbitrary composite message for the property test.
type quickMsg struct {
	U   uint64
	V   int64
	B   []byte
	S   string
	M   map[string]string
	L   []string
	F   bool
	U32 uint32
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(m quickMsg) bool {
		b := NewBuffer(0)
		b.Uvarint(m.U)
		b.Varint(m.V)
		b.BytesField(m.B)
		b.String(m.S)
		b.StringMap(m.M)
		b.StringSlice(m.L)
		b.Bool(m.F)
		b.Uint32(m.U32)

		r := NewReader(b.Bytes())
		if r.Uvarint() != m.U || r.Varint() != m.V {
			return false
		}
		if gb := r.BytesField(); !bytes.Equal(gb, m.B) && !(len(gb) == 0 && len(m.B) == 0) {
			return false
		}
		if r.String() != m.S {
			return false
		}
		gm := r.StringMap()
		if len(gm) != len(m.M) {
			return false
		}
		for k, v := range m.M {
			if gm[k] != v {
				return false
			}
		}
		gl := r.StringSlice()
		if len(gl) != len(m.L) {
			return false
		}
		for i := range m.L {
			if gl[i] != m.L[i] {
				return false
			}
		}
		if r.Bool() != m.F || r.Uint32() != m.U32 {
			return false
		}
		return r.Finish() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Feed random byte soup into every decoder; it must error or succeed,
	// never panic.
	f := func(raw []byte) bool {
		r := NewReader(raw)
		r.Uvarint()
		_ = r.String()
		r.BytesField()
		r.StringMap()
		r.StringSlice()
		r.Uint64()
		r.Varint()
		_ = r.Err()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceTail(t *testing.T) {
	id := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

	// Traced: full round trip.
	b := NewBuffer(0)
	b.String("prefix")
	b.TraceTail(id, 42)
	r := NewReader(b.Bytes())
	if got := r.String(); got != "prefix" {
		t.Fatalf("prefix = %q", got)
	}
	gotID, gotSpan := r.TraceTail()
	if gotID != id || gotSpan != 42 {
		t.Fatalf("tail = (%x, %d)", gotID, gotSpan)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}

	// Untraced: one marker byte.
	b.Reset()
	b.TraceTail([16]byte{}, 0)
	if b.Len() != 1 {
		t.Fatalf("untraced tail is %d bytes, want 1", b.Len())
	}
	r = NewReader(b.Bytes())
	if gotID, gotSpan = r.TraceTail(); gotID != ([16]byte{}) || gotSpan != 0 {
		t.Fatalf("untraced tail = (%x, %d)", gotID, gotSpan)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}

	// Absent (old format): no bytes at all decodes as untraced, no error.
	b.Reset()
	b.String("old record")
	r = NewReader(b.Bytes())
	_ = r.String()
	if gotID, gotSpan = r.TraceTail(); gotID != ([16]byte{}) || gotSpan != 0 {
		t.Fatalf("absent tail = (%x, %d)", gotID, gotSpan)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}

	// Truncated tail: marker present but id cut short -> error.
	b.Reset()
	b.TraceTail(id, 42)
	r = NewReader(b.Bytes()[:9])
	r.TraceTail()
	if r.Err() == nil {
		t.Fatal("truncated tail decoded without error")
	}

	// Bad marker -> error.
	r = NewReader([]byte{7})
	r.TraceTail()
	if r.Err() == nil {
		t.Fatal("bad marker decoded without error")
	}
}
