package rpc

import (
	"context"
	"sync"
	"testing"

	"repro/internal/benchutil"
)

// benchEcho starts an echo server and a connected client over loopback
// TCP, with one warm-up round trip so dial and handshake costs stay out
// of the measured loop.
func benchEcho(b *testing.B) *Client {
	b.Helper()
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	c := NewClient(addr, nil)
	b.Cleanup(c.Close)
	if _, err := c.Call(context.Background(), "echo", []byte("warm")); err != nil {
		b.Fatal(err)
	}
	return c
}

// benchmarkRoundTrip measures the serial request/response round trip —
// the clerk's Transceive critical path. allocs/op here is the number the
// zero-alloc hot path work is judged by (see BENCH_lockfree_fastpath.json).
func benchmarkRoundTrip(b *testing.B, size int) {
	c := benchEcho(b)
	payload := make([]byte, size)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(ctx, "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCRoundTrip_128B(b *testing.B) {
	benchutil.WithGOMAXPROCS(b, benchutil.Procs, func(b *testing.B) {
		benchmarkRoundTrip(b, 128)
	})
}

func BenchmarkRPCRoundTrip_4KB(b *testing.B) {
	benchutil.WithGOMAXPROCS(b, benchutil.Procs, func(b *testing.B) {
		benchmarkRoundTrip(b, 4096)
	})
}

// benchmarkRoundTripConcurrent drives many in-flight calls through one
// connection — the regime where the server's response writer can coalesce
// small frames into a single writev instead of one syscall per response.
func benchmarkRoundTripConcurrent(b *testing.B, callers, size int) {
	c := benchEcho(b)
	payload := make([]byte, size)
	ctx := context.Background()
	perCaller := b.N/callers + 1
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perCaller; j++ {
				if _, err := c.Call(ctx, "echo", payload); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkRPCRoundTripConcurrent_8x128B(b *testing.B) {
	benchutil.WithGOMAXPROCS(b, benchutil.Procs, func(b *testing.B) {
		benchmarkRoundTripConcurrent(b, 8, 128)
	})
}

// BenchmarkRPCOneWay_128B measures the paper's Send optimisation path: a
// one-way frame write with no response to wait for.
func BenchmarkRPCOneWay_128B(b *testing.B) {
	c := benchEcho(b)
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}
