package rpc

// Pooled buffers and frames for the RPC hot path.
//
// Every call used to allocate on both sides of the wire: an encode buffer
// per frame written, a body buffer and a frame struct per frame read.
// Under load those are the dominant allocations in the process (the queue
// fast path itself is allocation-free), so they all come from sync.Pools
// here. Buffers are segregated into a few size classes rather than pooled
// by exact size: a pool of exact sizes never hits, and a single class
// wastes memory pinning 1 MB buffers under 100-byte frames.
//
// Ownership contract: a *buf or pooled *frame has exactly one owner, and
// the owner must either release() it or hand it off (connWriter takes
// ownership of queued buffers; a frame delivered to a pending call belongs
// to the caller). Release is idempotent-unsafe by design — releasing twice
// is a bug, as with any pool.

import "sync"

// bufClassSizes are the pooled capacity classes. Frames larger than the
// top class are allocated directly and never pooled (class -1): they are
// rare (maxFrame is 16 MB but typical payloads are small), and pinning
// multi-megabyte buffers in a pool trades too much memory for too little
// speedup.
var bufClassSizes = [...]int{256, 4 << 10, 64 << 10, 1 << 20}

var bufPools [len(bufClassSizes)]sync.Pool

// buf is a pooled byte buffer. The struct (not the slice) is what cycles
// through the pool, so neither Get nor Put boxes a slice header.
type buf struct {
	b     []byte
	class int8 // index into bufPools, or -1 for unpooled
}

// getBuf returns a buffer with len n, and whether it was reused from a
// pool (the signal behind the rpc.buf_reuse counters).
func getBuf(n int) (p *buf, reused bool) {
	for i := range bufClassSizes {
		if n <= bufClassSizes[i] {
			if v := bufPools[i].Get(); v != nil {
				p = v.(*buf)
				p.b = p.b[:n]
				return p, true
			}
			return &buf{b: make([]byte, n, bufClassSizes[i]), class: int8(i)}, false
		}
	}
	return &buf{b: make([]byte, n), class: -1}, false
}

// release returns p to its class pool. Oversize (class -1) buffers are
// left to the garbage collector. nil-safe.
func (p *buf) release() {
	if p == nil || p.class < 0 {
		return
	}
	bufPools[p.class].Put(p)
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// getFrame returns a cleared frame from the pool.
func getFrame() *frame {
	return framePool.Get().(*frame)
}

// release clears f, returns its body buffer (if pooled) to its pool, and
// returns f itself to the frame pool. After release, every slice that
// aliased the body (methodB, payload) is dead; callers must copy what
// they need first.
func (f *frame) release() {
	body := f.body
	*f = frame{}
	framePool.Put(f)
	body.release()
}

// call is a pooled pending-call slot. done carries exactly one value per
// use — the response frame, or nil when the connection died — and is
// never closed, so the channel survives pooling. The invariant that makes
// reuse safe: a call is only returned to the pool with an empty channel
// (the owner either received the value or drained it via unregister).
type call struct {
	done chan *frame
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan *frame, 1)} }}

func getCall() *call  { return callPool.Get().(*call) }
func putCall(p *call) { callPool.Put(p) }
