//go:build race

package rpc

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation adds allocations of its own and makes
// testing.AllocsPerRun bounds meaningless.
const raceEnabled = true
