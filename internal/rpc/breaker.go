package rpc

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Breaker states. The classic three-state machine:
//
//	closed ──(threshold consecutive transport failures)──▶ open
//	open ──(cooldown elapses)──▶ half-open
//	half-open ──(probe succeeds)──▶ closed
//	half-open ──(probe fails)──▶ open (cooldown restarts)
//
// While open, calls fail locally with ErrCircuitOpen — no dial, no
// network traffic — so a caller retrying against a down peer fails fast
// instead of burning a dial timeout per attempt. Half-open admits exactly
// one probe call; concurrent calls keep getting ErrCircuitOpen until the
// probe resolves.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-endpoint circuit breaker embedded in Client. The zero
// value (threshold 0) is disarmed: allow always succeeds and record is a
// no-op, keeping the breaker entirely off the hot path for clients that
// never call SetBreaker.
type breaker struct {
	// armed mirrors threshold > 0 so the disarmed hot path is a single
	// atomic load, not a mutex acquisition per call.
	armed     atomic.Bool
	mu        sync.Mutex
	threshold int // consecutive transport failures that trip the breaker; 0 = disarmed
	cooldown  time.Duration
	fails     int
	state     int32
	openUntil time.Time
	opens     *obs.Counter // may be nil (zero-value breaker in tests)
}

// SetBreaker arms (or, with threshold 0, disarms) the client's circuit
// breaker: after threshold consecutive transport failures the breaker
// opens and calls fail fast with ErrCircuitOpen until cooldown elapses,
// then a single probe call is admitted. Only transport failures count;
// *RemoteError and ErrBusy mean the peer is alive and reset the failure
// streak.
func (c *Client) SetBreaker(threshold int, cooldown time.Duration) {
	c.br.mu.Lock()
	defer c.br.mu.Unlock()
	c.br.threshold = threshold
	c.br.cooldown = cooldown
	c.br.fails = 0
	c.br.state = breakerClosed
	c.br.armed.Store(threshold > 0)
}

// BreakerState reports the breaker's current state as a string, for
// diagnostics: "closed", "open", "half-open", or "off".
func (c *Client) BreakerState() string {
	c.br.mu.Lock()
	defer c.br.mu.Unlock()
	if c.br.threshold == 0 {
		return "off"
	}
	switch c.br.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// allow gates a call attempt. It returns ErrCircuitOpen while the breaker
// is open (or while a half-open probe is already in flight), and admits
// the single probe when the cooldown has elapsed.
func (b *breaker) allow() error {
	if b == nil || !b.armed.Load() {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold == 0 {
		return nil
	}
	switch b.state {
	case breakerOpen:
		if time.Now().Before(b.openUntil) {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen // this caller is the probe
		return nil
	case breakerHalfOpen:
		return ErrCircuitOpen
	}
	return nil
}

// record feeds a call outcome to the breaker. Only transport failures
// count against it; nil closes it; anything else (remote errors, a
// locally-closed client) is neutral.
func (b *breaker) record(err error) {
	if b == nil || !b.armed.Load() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold == 0 {
		return
	}
	if err == nil {
		b.fails = 0
		b.state = breakerClosed
		return
	}
	var terr *TransportError
	if !errors.As(err, &terr) {
		return // not a transport failure; says nothing about the peer
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		b.state = breakerOpen
		b.openUntil = time.Now().Add(b.cooldown)
		b.fails = 0
		if b.opens != nil {
			b.opens.Inc()
		}
	}
}
