package rpc

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/obs/trace"
)

// FuzzReadFrame feeds arbitrary bytes to the wire decoder: it must return
// a frame or an error, never panic or over-allocate (the length prefix is
// bounded before any allocation).
func FuzzReadFrame(f *testing.F) {
	// A valid frame as seed.
	var buf bytes.Buffer
	if err := writeFrame(&buf, &frame{kind: kindRequest, id: 7, method: "m", payload: []byte("p")}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversized length prefix
	f.Add([]byte{11, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := readFrame(r)
			if err != nil {
				return
			}
			if fr == nil {
				t.Fatal("nil frame without error")
			}
		}
	})
}

// FuzzFrameRoundTrip: any legal frame — traced or not — survives
// encode/decode. The kind's high bits (trace and deadline flags) are
// owned by the codec, so inputs are masked to the 6-bit kind space.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(0), "method", []byte("payload"), []byte{}, uint64(0))
	f.Add(uint8(3), uint64(1<<63), "", []byte{}, []byte{}, uint64(0))
	f.Add(uint8(1), uint64(9), "qm.enqueue", []byte("p"),
		[]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint64(42))
	f.Fuzz(func(t *testing.T, kind uint8, id uint64, method string, payload []byte, traceID []byte, span uint64) {
		if len(method) > 0xffff || len(payload) > 1<<20 {
			t.Skip()
		}
		kind &^= kindFlags
		var ref trace.Ref
		copy(ref.Trace[:], traceID)
		ref.Span = trace.SpanID(span)
		var buf bytes.Buffer
		in := &frame{kind: kind, id: id, method: method, ref: ref, payload: payload}
		if err := writeFrame(&buf, in); err != nil {
			t.Skip() // over-limit frames are rejected at write time
		}
		out, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if out.kind != kind || out.id != id || out.method != method || !bytes.Equal(out.payload, payload) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", out, in)
		}
		// A zero trace id means untraced: the span is not carried.
		want := ref
		if !ref.Valid() {
			want = trace.Ref{}
		}
		if out.ref != want {
			t.Fatalf("trace ref mismatch: got %+v, want %+v", out.ref, want)
		}
		if _, err := readFrame(&buf); err != io.EOF {
			t.Fatalf("trailing garbage after frame: %v", err)
		}
	})
}

// FuzzFrameRoundTripDeadline: frames carrying the optional deadline
// budget — alone or alongside trace context — survive encode/decode, and
// the budget is preserved exactly. A separate target (rather than a new
// parameter on FuzzFrameRoundTrip) keeps that target's seed corpus valid.
func FuzzFrameRoundTripDeadline(f *testing.F) {
	f.Add(uint8(1), uint64(1), "qm.dequeue", []byte("p"), []byte{}, uint64(0), int64(time.Second))
	f.Add(uint8(1), uint64(42), "m", []byte{}, []byte{}, uint64(0), int64(1))
	f.Add(uint8(2), uint64(9), "qm.enqueue", []byte("body"),
		[]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint64(7), int64(5*time.Minute))
	f.Fuzz(func(t *testing.T, kind uint8, id uint64, method string, payload []byte, traceID []byte, span uint64, budget int64) {
		if len(method) > 0xffff || len(payload) > 1<<20 {
			t.Skip()
		}
		kind &^= kindFlags
		if budget < 0 {
			budget = -budget
		}
		if budget < 0 { // math.MinInt64 negates to itself
			budget = 1
		}
		var ref trace.Ref
		copy(ref.Trace[:], traceID)
		ref.Span = trace.SpanID(span)
		in := &frame{kind: kind, id: id, method: method, ref: ref, payload: payload,
			budget: time.Duration(budget), hasBudget: true}
		var buf bytes.Buffer
		if err := writeFrame(&buf, in); err != nil {
			t.Skip() // over-limit frames are rejected at write time
		}
		out, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if out.kind != kind || out.id != id || out.method != method || !bytes.Equal(out.payload, payload) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", out, in)
		}
		if !out.hasBudget || out.budget != time.Duration(budget) {
			t.Fatalf("budget mismatch: got (%v,%v), want (%v,true)", out.budget, out.hasBudget, time.Duration(budget))
		}
		want := ref
		if !ref.Valid() {
			want = trace.Ref{}
		}
		if out.ref != want {
			t.Fatalf("trace ref mismatch: got %+v, want %+v", out.ref, want)
		}
	})
}
