package rpc

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/obs/trace"
)

// FuzzReadFrame feeds arbitrary bytes to the wire decoder: it must return
// a frame or an error, never panic or over-allocate (the length prefix is
// bounded before any allocation).
func FuzzReadFrame(f *testing.F) {
	// A valid frame as seed.
	var buf bytes.Buffer
	if err := writeFrame(&buf, &frame{kind: kindRequest, id: 7, method: "m", payload: []byte("p")}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversized length prefix
	f.Add([]byte{11, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := readFrame(r)
			if err != nil {
				return
			}
			if fr == nil {
				t.Fatal("nil frame without error")
			}
		}
	})
}

// FuzzFrameRoundTrip: any legal frame — traced or not — survives
// encode/decode. The kind's high bit is the trace flag, owned by the
// codec, so inputs are masked to the 7-bit kind space.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(0), "method", []byte("payload"), []byte{}, uint64(0))
	f.Add(uint8(3), uint64(1<<63), "", []byte{}, []byte{}, uint64(0))
	f.Add(uint8(1), uint64(9), "qm.enqueue", []byte("p"),
		[]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint64(42))
	f.Fuzz(func(t *testing.T, kind uint8, id uint64, method string, payload []byte, traceID []byte, span uint64) {
		if len(method) > 0xffff || len(payload) > 1<<20 {
			t.Skip()
		}
		kind &^= kindTraceFlag
		var ref trace.Ref
		copy(ref.Trace[:], traceID)
		ref.Span = trace.SpanID(span)
		var buf bytes.Buffer
		in := &frame{kind: kind, id: id, method: method, ref: ref, payload: payload}
		if err := writeFrame(&buf, in); err != nil {
			t.Skip() // over-limit frames are rejected at write time
		}
		out, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if out.kind != kind || out.id != id || out.method != method || !bytes.Equal(out.payload, payload) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", out, in)
		}
		// A zero trace id means untraced: the span is not carried.
		want := ref
		if !ref.Valid() {
			want = trace.Ref{}
		}
		if out.ref != want {
			t.Fatalf("trace ref mismatch: got %+v, want %+v", out.ref, want)
		}
		if _, err := readFrame(&buf); err != io.EOF {
			t.Fatalf("trailing garbage after frame: %v", err)
		}
	})
}
