package rpc

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the wire decoder: it must return
// a frame or an error, never panic or over-allocate (the length prefix is
// bounded before any allocation).
func FuzzReadFrame(f *testing.F) {
	// A valid frame as seed.
	var buf bytes.Buffer
	if err := writeFrame(&buf, &frame{kind: kindRequest, id: 7, method: "m", payload: []byte("p")}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversized length prefix
	f.Add([]byte{11, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := readFrame(r)
			if err != nil {
				return
			}
			if fr == nil {
				t.Fatal("nil frame without error")
			}
		}
	})
}

// FuzzFrameRoundTrip: any legal frame survives encode/decode.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(0), "method", []byte("payload"))
	f.Add(uint8(3), uint64(1<<63), "", []byte{})
	f.Fuzz(func(t *testing.T, kind uint8, id uint64, method string, payload []byte) {
		if len(method) > 0xffff || len(payload) > 1<<20 {
			t.Skip()
		}
		var buf bytes.Buffer
		in := &frame{kind: kind, id: id, method: method, payload: payload}
		if err := writeFrame(&buf, in); err != nil {
			t.Skip() // over-limit frames are rejected at write time
		}
		out, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if out.kind != kind || out.id != id || out.method != method || !bytes.Equal(out.payload, payload) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", out, in)
		}
		if _, err := readFrame(&buf); err != io.EOF {
			t.Fatalf("trailing garbage after frame: %v", err)
		}
	})
}
