package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestPlainFrameBytesUnchanged pins the legacy wire encoding: a frame
// with neither trace context nor deadline budget must be byte-for-byte
// identical to the pre-metadata format, so old peers interoperate.
func TestPlainFrameBytesUnchanged(t *testing.T) {
	var buf bytes.Buffer
	in := &frame{kind: kindRequest, id: 0x0123456789abcdef, method: "qm.enqueue", payload: []byte("hello")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Hand-assembled legacy layout: length u32 | kind u8 | id u64 |
	// methodLen u16 | method | payload.
	var want bytes.Buffer
	body := 1 + 8 + 2 + len(in.method) + len(in.payload)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(body))
	want.Write(tmp[:4])
	want.WriteByte(kindRequest)
	binary.LittleEndian.PutUint64(tmp[:], in.id)
	want.Write(tmp[:])
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(in.method)))
	want.Write(tmp[:2])
	want.WriteString(in.method)
	want.Write(in.payload)
	if !bytes.Equal(buf.Bytes(), want.Bytes()) {
		t.Fatalf("plain frame encoding changed:\n got %x\nwant %x", buf.Bytes(), want.Bytes())
	}
}

// TestDeadlinePropagation: a CtxHandler observes the caller's deadline as
// ctx cancellation, and the server counts the drop.
func TestDeadlinePropagation(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServerWith(reg)
	sawDeadline := make(chan time.Duration, 1)
	srv.HandleCtx("sleep", func(ctx context.Context, payload []byte) ([]byte, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			sawDeadline <- -1
		} else {
			sawDeadline <- time.Until(dl)
		}
		<-ctx.Done() // sleep past the client's budget
		return nil, ctx.Err()
	})
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(addr, nil)
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err = cli.Call(ctx, "sleep", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	select {
	case d := <-sawDeadline:
		if d <= 0 || d > 150*time.Millisecond {
			t.Fatalf("server saw budget %v, want (0, 150ms]", d)
		}
	case <-time.After(time.Second):
		t.Fatal("handler never invoked")
	}
	// The handler returns after its ctx fires; the server then records
	// the drop. Poll briefly — the response write races the assertion.
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("rpc.deadline_drops").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rpc.deadline_drops never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeadlineAbsentWithoutCtxDeadline: handlers of undeadlined calls see
// no ctx deadline (nothing was propagated).
func TestDeadlineAbsentWithoutCtxDeadline(t *testing.T) {
	srv := NewServer()
	srv.HandleCtx("probe", func(ctx context.Context, payload []byte) ([]byte, error) {
		if _, ok := ctx.Deadline(); ok {
			return nil, errors.New("unexpected deadline")
		}
		return []byte("ok"), nil
	})
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(addr, nil)
	defer cli.Close()
	if _, err := cli.Call(context.Background(), "probe", nil); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionShed: requests over MaxInflight are shed with the
// retryable ErrBusy and counted, and capacity frees up afterwards.
func TestAdmissionShed(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServerWith(reg)
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	srv.Handle("block", func(payload []byte) ([]byte, error) {
		started <- struct{}{}
		<-release
		return nil, nil
	})
	srv.SetLimits(Limits{MaxInflight: 2})
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(addr, nil)
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cli.Call(context.Background(), "block", nil)
		}(i)
	}
	<-started
	<-started // both slots occupied
	_, shedErr := cli.Call(context.Background(), "block", nil)
	if !errors.Is(shedErr, ErrBusy) {
		t.Fatalf("third call: want ErrBusy, got %v", shedErr)
	}
	if !Retryable(shedErr) {
		t.Fatalf("shed response must be retryable: %v", shedErr)
	}
	if got := reg.Counter("server.shed").Value(); got != 1 {
		t.Fatalf("server.shed = %d, want 1", got)
	}
	close(release)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
	}
	// Slots released: the next call succeeds.
	if _, err := cli.Call(context.Background(), "block", nil); err != nil {
		t.Fatalf("post-release call: %v", err)
	}
	if n := srv.Inflight(); n != 0 {
		t.Fatalf("inflight = %d after all calls done", n)
	}
}

// TestAdmissionPerConn: a second connection still gets service when one
// connection saturates its per-conn limit.
func TestAdmissionPerConn(t *testing.T) {
	srv := NewServer()
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	srv.Handle("block", func(payload []byte) ([]byte, error) {
		started <- struct{}{}
		<-release
		return nil, nil
	})
	defer close(release)
	srv.Handle("ping", func(payload []byte) ([]byte, error) { return payload, nil })
	srv.SetLimits(Limits{MaxPerConn: 1})
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hog := NewClient(addr, nil)
	defer hog.Close()
	go hog.Call(context.Background(), "block", nil)
	<-started
	if _, err := hog.Call(context.Background(), "ping", nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("same-conn call: want ErrBusy, got %v", err)
	}
	other := NewClient(addr, nil)
	defer other.Close()
	if _, err := other.Call(context.Background(), "ping", []byte("x")); err != nil {
		t.Fatalf("other-conn call: %v", err)
	}
}

// TestErrorTaxonomy classifies representative errors.
func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&TransportError{Op: "dial x", Err: errors.New("refused")}, true},
		{fmt.Errorf("wrapped: %w", &TransportError{Op: "write", Err: errors.New("broken")}), true},
		{ErrBusy, true},
		{fmt.Errorf("%w: qm.enqueue", ErrBusy), true},
		{ErrCircuitOpen, true},
		{&RemoteError{Msg: "handler failed"}, false},
		{ErrConnClosed, false}, // bare = locally closed client
		{&Terminal{Err: &TransportError{Op: "call", Err: ErrConnClosed}}, false},
		{context.DeadlineExceeded, false},
		{context.Canceled, false},
	}
	for i, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("case %d (%v): Retryable = %v, want %v", i, c.err, got, c.want)
		}
	}
	// Wrapping preserves errors.Is on the cause.
	terr := &TransportError{Op: "call", Err: ErrConnClosed}
	if !errors.Is(terr, ErrConnClosed) {
		t.Fatal("TransportError must unwrap to its cause")
	}
}

// TestBreakerLifecycle drives the breaker through closed → open →
// half-open → closed against a server that is down, then up.
func TestBreakerLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	var refuse atomic.Bool
	refuse.Store(true)
	srv := NewServer()
	srv.Handle("ping", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dialer := func(a string) (net.Conn, error) {
		if refuse.Load() {
			return nil, errors.New("synthetic dial refused")
		}
		return net.Dial("tcp", a)
	}
	cli := NewClientWith(addr, dialer, reg)
	defer cli.Close()
	cli.SetBreaker(3, 50*time.Millisecond)

	for i := 0; i < 3; i++ {
		if _, err := cli.Call(context.Background(), "ping", nil); err == nil {
			t.Fatal("call should fail while peer is down")
		}
	}
	if st := cli.BreakerState(); st != "open" {
		t.Fatalf("after 3 failures: state %q, want open", st)
	}
	if _, err := cli.Call(context.Background(), "ping", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("while open: want ErrCircuitOpen (fail fast, no dial), got %v", err)
	}
	if got := reg.Counter("rpc.client.breaker_opens").Value(); got != 1 {
		t.Fatalf("breaker_opens = %d, want 1", got)
	}

	time.Sleep(60 * time.Millisecond) // cooldown elapses → half-open probe
	if _, err := cli.Call(context.Background(), "ping", nil); err == nil {
		t.Fatal("probe should fail while peer is still down")
	}
	if st := cli.BreakerState(); st != "open" {
		t.Fatalf("after failed probe: state %q, want open (reopened)", st)
	}

	refuse.Store(false) // peer recovers
	time.Sleep(60 * time.Millisecond)
	if _, err := cli.Call(context.Background(), "ping", []byte("hi")); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if st := cli.BreakerState(); st != "closed" {
		t.Fatalf("after successful probe: state %q, want closed", st)
	}
}

// TestBreakerIgnoresRemoteErrors: handler errors prove the peer is alive
// and must not trip the breaker.
func TestBreakerIgnoresRemoteErrors(t *testing.T) {
	srv := NewServer()
	srv.Handle("fail", func(p []byte) ([]byte, error) { return nil, errors.New("app error") })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(addr, nil)
	defer cli.Close()
	cli.SetBreaker(2, time.Minute)
	for i := 0; i < 10; i++ {
		var rerr *RemoteError
		if _, err := cli.Call(context.Background(), "fail", nil); !errors.As(err, &rerr) {
			t.Fatalf("call %d: want RemoteError, got %v", i, err)
		}
	}
	if st := cli.BreakerState(); st != "closed" {
		t.Fatalf("state %q after remote errors, want closed", st)
	}
}

// BenchmarkRPCRoundTrip measures a minimal echo call without deadline
// metadata — the hot path that must not regress when the deadline feature
// is unused.
func BenchmarkRPCRoundTrip(b *testing.B) {
	srv := NewServer()
	srv.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(addr, nil)
	defer cli.Close()
	payload := []byte("0123456789abcdef")
	ctx := context.Background()
	if _, err := cli.Call(ctx, "echo", payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ctx, "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCRoundTripDeadline is the same call with a (distant)
// deadline attached, for comparing the metadata cost.
func BenchmarkRPCRoundTripDeadline(b *testing.B) {
	srv := NewServer()
	srv.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(addr, nil)
	defer cli.Close()
	payload := []byte("0123456789abcdef")
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if _, err := cli.Call(ctx, "echo", payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ctx, "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}
