// Package rpc is the interprocess communication substrate: a small framed
// request/response protocol over net.Conn, in the spirit of the remote
// procedure calls the paper assumes between clerk and queue manager
// (Section 5, citing Birrell & Nelson).
//
// It supports plain request/response calls and one-way messages — the
// paper's Send optimisation: "it can invoke Enqueue using a one-way
// message, instead of a remote procedure call. ... This saves a message
// from the QM to the client" (Section 5). Message counters expose exactly
// that saving to the experiment harness.
//
// Wire format (all little-endian):
//
//	length  uint32  frame length excluding this field
//	kind    uint8   1=request 2=response 3=one-way 4=error-response;
//	                high bit (0x80) set when trace context follows
//	id      uint64  request id (0 for one-way)
//	method  uint16-prefixed string (requests and one-ways)
//	trace   16-byte trace id + 8-byte span id, present only when the
//	        kind's high bit is set — old peers' frames decode unchanged
//	payload remaining bytes
//
// The chaos layer injects failures by wrapping net.Conn; this package is
// deliberately transport-agnostic.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

const (
	kindRequest uint8 = 1
	kindResp    uint8 = 2
	kindOneWay  uint8 = 3
	kindError   uint8 = 4

	// kindTraceFlag marks a frame carrying trace context (16-byte trace id
	// + 8-byte span id between the method string and the payload). The base
	// kind is kind &^ kindTraceFlag, so peers that predate tracing never
	// set it and their frames decode exactly as before.
	kindTraceFlag uint8 = 0x80

	// traceCtxLen is the on-wire size of a trace context.
	traceCtxLen = 16 + 8

	// maxFrame bounds a frame; larger frames indicate corruption or abuse.
	maxFrame = 16 << 20
)

// Errors returned by clients and servers.
var (
	// ErrConnClosed reports that the connection died before a response.
	ErrConnClosed = errors.New("rpc: connection closed")
	// ErrTooLarge reports an over-limit frame.
	ErrTooLarge = errors.New("rpc: frame too large")
	// ErrNoMethod is wired back to callers of unregistered methods.
	ErrNoMethod = errors.New("rpc: no such method")
)

// Handler processes one request payload and returns a response payload.
// Handlers run on their own goroutine, so a handler may block (e.g. a
// waiting dequeue) without stalling the connection.
type Handler func(payload []byte) ([]byte, error)

// RefHandler is a Handler that also receives the caller's trace context
// (zero Ref when the request was untraced). Registered via HandleRef; the
// server wraps the handler invocation in an "rpc.<method>" span and hands
// the handler that span's ref so downstream work parents under it.
type RefHandler func(ref trace.Ref, payload []byte) ([]byte, error)

// frame is one decoded wire frame.
type frame struct {
	kind    uint8
	id      uint64
	method  string
	ref     trace.Ref
	payload []byte
}

func writeFrame(w io.Writer, f *frame) error {
	methodLen := len(f.method)
	if methodLen > 0xffff {
		return fmt.Errorf("rpc: method name too long")
	}
	traced := f.ref.Valid()
	n := 1 + 8 + 2 + methodLen + len(f.payload)
	if traced {
		n += traceCtxLen
	}
	if n > maxFrame {
		return ErrTooLarge
	}
	buf := make([]byte, 4+n)
	binary.LittleEndian.PutUint32(buf, uint32(n))
	kind := f.kind
	if traced {
		kind |= kindTraceFlag
	}
	buf[4] = kind
	binary.LittleEndian.PutUint64(buf[5:], f.id)
	binary.LittleEndian.PutUint16(buf[13:], uint16(methodLen))
	copy(buf[15:], f.method)
	off := 15 + methodLen
	if traced {
		copy(buf[off:], f.ref.Trace[:])
		binary.LittleEndian.PutUint64(buf[off+16:], uint64(f.ref.Span))
		off += traceCtxLen
	}
	copy(buf[off:], f.payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (*frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 11 || n > maxFrame { // kind(1) + id(8) + methodLen(2) minimum
		return nil, ErrTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	traced := buf[0]&kindTraceFlag != 0
	f := &frame{kind: buf[0] &^ kindTraceFlag, id: binary.LittleEndian.Uint64(buf[1:])}
	methodLen := int(binary.LittleEndian.Uint16(buf[9:]))
	off := 11 + methodLen
	if off > len(buf) {
		return nil, fmt.Errorf("rpc: bad method length")
	}
	f.method = string(buf[11:off])
	if traced {
		if off+traceCtxLen > len(buf) {
			return nil, fmt.Errorf("rpc: truncated trace context")
		}
		copy(f.ref.Trace[:], buf[off:])
		f.ref.Span = trace.SpanID(binary.LittleEndian.Uint64(buf[off+16:]))
		off += traceCtxLen
	}
	f.payload = buf[off:]
	return f, nil
}

// Stats count wire messages for the experiment harness.
type Stats struct {
	MessagesSent     uint64
	MessagesReceived uint64
	Calls            uint64
	OneWays          uint64
}

// Server dispatches incoming calls to registered handlers.
type Server struct {
	mu          sync.RWMutex
	handlers    map[string]Handler
	refHandlers map[string]RefHandler
	tracer      *trace.Tracer // nil-safe; nil means tracing disabled
	lis         net.Listener
	conns       map[net.Conn]struct{}
	closed      bool
	wg          sync.WaitGroup

	mSent     *obs.Counter
	mRecv     *obs.Counter
	mRequests *obs.Counter
	mOneWays  *obs.Counter
	mErrors   *obs.Counter
}

// NewServer returns an empty server with a private metrics registry.
func NewServer() *Server { return NewServerWith(nil) }

// NewServerWith returns an empty server recording into reg (nil creates a
// private registry).
func NewServerWith(reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{
		handlers:    make(map[string]Handler),
		refHandlers: make(map[string]RefHandler),
		conns:       make(map[net.Conn]struct{}),
		mSent:       reg.Counter("rpc.server.sent"),
		mRecv:       reg.Counter("rpc.server.recv"),
		mRequests:   reg.Counter("rpc.server.requests"),
		mOneWays:    reg.Counter("rpc.server.oneways"),
		mErrors:     reg.Counter("rpc.server.errors"),
	}
}

// Handle registers a handler for method.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// HandleRef registers a trace-aware handler for method. It takes
// precedence over a plain Handler registered under the same name.
func (s *Server) HandleRef(method string, h RefHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refHandlers[method] = h
}

// SetTracer installs the tracer used to record server-side "rpc.<method>"
// spans for traced requests. nil (the default) disables recording; trace
// context still flows through to RefHandlers either way.
func (s *Server) SetTracer(tr *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
}

// Stats returns the server's message counters.
func (s *Server) Stats() Stats {
	return Stats{
		MessagesSent:     s.mSent.Value(),
		MessagesReceived: s.mRecv.Value(),
	}
}

// Serve accepts connections on lis until Close. It returns after the
// listener fails (normally because Close closed it).
func (s *Server) Serve(lis net.Listener) {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr ("127.0.0.1:0" style) and serves in a
// background goroutine, returning the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen: %w", err)
	}
	go s.Serve(lis)
	return lis.Addr().String(), nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		s.mRecv.Inc()
		s.mu.RLock()
		rh, rok := s.refHandlers[f.method]
		h, ok := s.handlers[f.method]
		tr := s.tracer
		s.mu.RUnlock()
		if rok {
			// Adapt once so the dispatch below has a single shape; the
			// span (when traced) brackets the handler and hands it a
			// child ref to parent downstream work under.
			ref := f.ref
			method := f.method
			h, ok = func(payload []byte) ([]byte, error) {
				sp, traced := tr.Begin(ref, "rpc."+method)
				child := ref
				if traced {
					child = sp.Ref()
				}
				out, err := rh(child, payload)
				if traced {
					tr.Finish(&sp)
				}
				return out, err
			}, true
		}
		switch f.kind {
		case kindOneWay:
			s.mOneWays.Inc()
			if ok {
				go h(f.payload)
			}
		case kindRequest:
			s.mRequests.Inc()
			go func(f *frame) {
				var resp frame
				resp.id = f.id
				resp.ref = f.ref // echo the trace context on the reply
				if !ok {
					resp.kind = kindError
					resp.payload = []byte(ErrNoMethod.Error() + ": " + f.method)
				} else if out, err := h(f.payload); err != nil {
					resp.kind = kindError
					resp.payload = []byte(err.Error())
				} else {
					resp.kind = kindResp
					resp.payload = out
				}
				if resp.kind == kindError {
					s.mErrors.Inc()
				}
				writeMu.Lock()
				defer writeMu.Unlock()
				if err := writeFrame(conn, &resp); err == nil {
					s.mSent.Inc()
				}
			}(f)
		}
	}
}

// Close stops the listener and severs all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Dialer opens a connection to an address; the chaos layer substitutes
// fault-injecting dialers.
type Dialer func(addr string) (net.Conn, error)

// Client calls a Server. It lazily (re)connects on each call after a
// connection failure, so a transient network fault surfaces as one failed
// call, not a dead client.
type Client struct {
	addr   string
	dialer Dialer

	mu      sync.Mutex
	conn    net.Conn
	pending map[uint64]chan *frame
	nextID  uint64
	closed  bool

	mSent     *obs.Counter
	mRecv     *obs.Counter
	mCalls    *obs.Counter
	mOneWays  *obs.Counter
	mErrors   *obs.Counter // transport-level failures (dial, write, dropped conn)
	mRedials  *obs.Counter // reconnects after the first successful dial
	mCallNans *obs.Histogram
	dialed    bool // a connection has been established at least once
}

// NewClient returns a client for addr with a private metrics registry.
// dialer nil means plain TCP.
func NewClient(addr string, dialer Dialer) *Client {
	return NewClientWith(addr, dialer, nil)
}

// NewClientWith returns a client recording into reg (nil creates a private
// registry).
func NewClientWith(addr string, dialer Dialer, reg *obs.Registry) *Client {
	if dialer == nil {
		dialer = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Client{
		addr:      addr,
		dialer:    dialer,
		pending:   make(map[uint64]chan *frame),
		mSent:     reg.Counter("rpc.client.sent"),
		mRecv:     reg.Counter("rpc.client.recv"),
		mCalls:    reg.Counter("rpc.client.calls"),
		mOneWays:  reg.Counter("rpc.client.oneways"),
		mErrors:   reg.Counter("rpc.client.errors"),
		mRedials:  reg.Counter("rpc.client.redials"),
		mCallNans: reg.Histogram("rpc.client.call_ns"),
	}
}

// Stats returns the client's message counters.
func (c *Client) Stats() Stats {
	return Stats{
		MessagesSent:     c.mSent.Value(),
		MessagesReceived: c.mRecv.Value(),
		Calls:            c.mCalls.Value(),
		OneWays:          c.mOneWays.Value(),
	}
}

// ensureConnLocked dials if needed. Caller holds c.mu.
func (c *Client) ensureConnLocked() error {
	if c.closed {
		return ErrConnClosed
	}
	if c.conn != nil {
		return nil
	}
	conn, err := c.dialer(c.addr)
	if err != nil {
		c.mErrors.Inc()
		return fmt.Errorf("rpc: dial %s: %w", c.addr, err)
	}
	if c.dialed {
		c.mRedials.Inc()
	}
	c.dialed = true
	c.conn = conn
	go c.readLoop(conn)
	return nil
}

func (c *Client) readLoop(conn net.Conn) {
	for {
		f, err := readFrame(conn)
		if err != nil {
			c.dropConn(conn)
			return
		}
		c.mRecv.Inc()
		c.mu.Lock()
		ch, ok := c.pending[f.id]
		if ok {
			delete(c.pending, f.id)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// dropConn tears down a failed connection and fails its pending calls.
func (c *Client) dropConn(conn net.Conn) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	stale := c.pending
	c.pending = make(map[uint64]chan *frame)
	c.mu.Unlock()
	conn.Close()
	for _, ch := range stale {
		close(ch)
	}
}

// Call performs a request/response RPC. A remote handler error comes back
// as a *RemoteError.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	start := time.Now()
	c.mu.Lock()
	if err := c.ensureConnLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	conn := c.conn
	c.nextID++
	id := c.nextID
	ch := make(chan *frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()
	c.mSent.Inc()
	c.mCalls.Inc()

	if err := writeFrame(conn, &frame{kind: kindRequest, id: id, method: method, ref: trace.From(ctx), payload: payload}); err != nil {
		c.mErrors.Inc()
		c.dropConn(conn)
		return nil, fmt.Errorf("rpc: write: %w", err)
	}
	select {
	case f, ok := <-ch:
		if !ok {
			c.mErrors.Inc()
			return nil, ErrConnClosed
		}
		// A response arrived — a complete round trip, even if the handler
		// reported an error — so it counts toward the latency histogram.
		c.mCallNans.Observe(time.Since(start).Nanoseconds())
		if f.kind == kindError {
			return nil, &RemoteError{Msg: string(f.payload)}
		}
		return f.payload, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Send transmits a one-way message: no response, no delivery confirmation.
func (c *Client) Send(method string, payload []byte) error {
	return c.SendCtx(context.Background(), method, payload)
}

// SendCtx is Send carrying any trace context attached to ctx as frame
// metadata. The context does not bound the write (one-ways are fire and
// forget); it exists only to propagate the trace ref.
func (c *Client) SendCtx(ctx context.Context, method string, payload []byte) error {
	c.mu.Lock()
	if err := c.ensureConnLocked(); err != nil {
		c.mu.Unlock()
		return err
	}
	conn := c.conn
	c.mu.Unlock()
	c.mSent.Inc()
	c.mOneWays.Inc()
	if err := writeFrame(conn, &frame{kind: kindOneWay, method: method, ref: trace.From(ctx), payload: payload}); err != nil {
		c.mErrors.Inc()
		c.dropConn(conn)
		return fmt.Errorf("rpc: send: %w", err)
	}
	return nil
}

// Close severs the connection and fails pending calls.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		c.dropConn(conn)
	}
}

// RemoteError is an error produced by the remote handler (as opposed to a
// transport failure — the distinction matters to the clerk's recovery
// logic: a RemoteError means the server received and processed the call).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }
