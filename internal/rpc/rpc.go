// Package rpc is the interprocess communication substrate: a small framed
// request/response protocol over net.Conn, in the spirit of the remote
// procedure calls the paper assumes between clerk and queue manager
// (Section 5, citing Birrell & Nelson).
//
// It supports plain request/response calls and one-way messages — the
// paper's Send optimisation: "it can invoke Enqueue using a one-way
// message, instead of a remote procedure call. ... This saves a message
// from the QM to the client" (Section 5). Message counters expose exactly
// that saving to the experiment harness.
//
// Wire format (all little-endian):
//
//	length   uint32  frame length excluding this field
//	kind     uint8   1=request 2=response 3=one-way 4=error-response
//	                 5=busy (admission-control shed);
//	                 high bit (0x80) set when trace context follows,
//	                 bit 0x40 set when a deadline budget follows
//	id       uint64  request id (0 for one-way)
//	method   uint16-prefixed string (requests and one-ways)
//	trace    16-byte trace id + 8-byte span id, present only when the
//	         kind's 0x80 bit is set — old peers' frames decode unchanged
//	deadline uint64  remaining time budget in nanoseconds, present only
//	         when the kind's 0x40 bit is set; a relative budget (not an
//	         absolute timestamp) so peers need no clock agreement
//	payload  remaining bytes
//
// The chaos layer injects failures by wrapping net.Conn; this package is
// deliberately transport-agnostic.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/log"
	"repro/internal/obs/trace"
)

const (
	kindRequest uint8 = 1
	kindResp    uint8 = 2
	kindOneWay  uint8 = 3
	kindError   uint8 = 4
	kindBusy    uint8 = 5

	// kindTraceFlag marks a frame carrying trace context (16-byte trace id
	// + 8-byte span id between the method string and the payload). The base
	// kind is kind &^ kindFlags, so peers that predate tracing never set it
	// and their frames decode exactly as before.
	kindTraceFlag uint8 = 0x80

	// kindDeadlineFlag marks a frame carrying the caller's remaining time
	// budget (8 bytes, after any trace context). Same compatibility trick
	// as the trace flag: frames without the bit are byte-identical to the
	// old format, and old peers never set it.
	kindDeadlineFlag uint8 = 0x40

	// kindFlags are the metadata bits the codec owns within the kind byte.
	kindFlags = kindTraceFlag | kindDeadlineFlag

	// traceCtxLen is the on-wire size of a trace context.
	traceCtxLen = 16 + 8

	// deadlineLen is the on-wire size of a deadline budget.
	deadlineLen = 8

	// maxFrame bounds a frame; larger frames indicate corruption or abuse.
	maxFrame = 16 << 20
)

// Errors returned by clients and servers.
var (
	// ErrConnClosed reports that the connection died before a response.
	ErrConnClosed = errors.New("rpc: connection closed")
	// ErrTooLarge reports an over-limit frame.
	ErrTooLarge = errors.New("rpc: frame too large")
	// ErrNoMethod is wired back to callers of unregistered methods.
	ErrNoMethod = errors.New("rpc: no such method")
)

// Handler processes one request payload and returns a response payload.
// Handlers run on their own goroutine, so a handler may block (e.g. a
// waiting dequeue) without stalling the connection.
type Handler func(payload []byte) ([]byte, error)

// RefHandler is a Handler that also receives the caller's trace context
// (zero Ref when the request was untraced). Registered via HandleRef; the
// server wraps the handler invocation in an "rpc.<method>" span and hands
// the handler that span's ref so downstream work parents under it.
type RefHandler func(ref trace.Ref, payload []byte) ([]byte, error)

// CtxHandler is the full-context handler shape: ctx carries the caller's
// propagated deadline (when the request frame had one) and trace ref (via
// trace.From), and is cancelled when the client's time budget expires —
// so a blocking handler (a waiting dequeue) stops working for a caller
// that has given up. Registered via HandleCtx; takes precedence over
// RefHandler and Handler under the same name.
type CtxHandler func(ctx context.Context, payload []byte) ([]byte, error)

// frame is one decoded wire frame. Hot-path decodes (frameReader) leave
// method empty and point methodB into body's backing; the slow, test-facing
// readFrame materializes method as a string and leaves body nil.
type frame struct {
	kind      uint8
	id        uint64
	method    string
	methodB   []byte // aliases body; valid until release
	ref       trace.Ref
	budget    time.Duration // remaining caller budget; valid when hasBudget
	hasBudget bool
	payload   []byte
	body      *buf // pooled backing for methodB/payload; nil when unpooled
}

// methodStr materializes the method name as a string, whichever way the
// frame was decoded. Cold paths only (errors, span names).
func (f *frame) methodStr() string {
	if f.methodB != nil {
		return string(f.methodB)
	}
	return f.method
}

// encodeFrame serializes f into a pooled buffer (length prefix included)
// and reports whether the buffer was pool-reused. The caller owns the
// returned buffer and must release it or hand it to a connWriter.
func encodeFrame(f *frame) (p *buf, reused bool, err error) {
	method := f.methodB
	if method == nil && f.method != "" {
		// Zero-copy view of the string; written, never mutated or kept.
		method = []byte(f.method)
	}
	methodLen := len(method)
	if methodLen > 0xffff {
		return nil, false, fmt.Errorf("rpc: method name too long")
	}
	traced := f.ref.Valid()
	n := 1 + 8 + 2 + methodLen + len(f.payload)
	if traced {
		n += traceCtxLen
	}
	if f.hasBudget {
		n += deadlineLen
	}
	if n > maxFrame {
		return nil, false, ErrTooLarge
	}
	p, reused = getBuf(4 + n)
	buf := p.b
	binary.LittleEndian.PutUint32(buf, uint32(n))
	kind := f.kind
	if traced {
		kind |= kindTraceFlag
	}
	if f.hasBudget {
		kind |= kindDeadlineFlag
	}
	buf[4] = kind
	binary.LittleEndian.PutUint64(buf[5:], f.id)
	binary.LittleEndian.PutUint16(buf[13:], uint16(methodLen))
	copy(buf[15:], method)
	off := 15 + methodLen
	if traced {
		copy(buf[off:], f.ref.Trace[:])
		binary.LittleEndian.PutUint64(buf[off+16:], uint64(f.ref.Span))
		off += traceCtxLen
	}
	if f.hasBudget {
		budget := f.budget
		if budget < 0 {
			budget = 0
		}
		binary.LittleEndian.PutUint64(buf[off:], uint64(budget))
		off += deadlineLen
	}
	copy(buf[off:], f.payload)
	return p, reused, nil
}

func writeFrame(w io.Writer, f *frame) error {
	p, _, err := encodeFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(p.b)
	p.release()
	return err
}

// parseFrame decodes body into f. methodB and payload alias body.
func parseFrame(f *frame, body []byte) error {
	traced := body[0]&kindTraceFlag != 0
	hasBudget := body[0]&kindDeadlineFlag != 0
	f.kind = body[0] &^ kindFlags
	f.id = binary.LittleEndian.Uint64(body[1:])
	methodLen := int(binary.LittleEndian.Uint16(body[9:]))
	off := 11 + methodLen
	if off > len(body) {
		return fmt.Errorf("rpc: bad method length")
	}
	f.methodB = body[11:off]
	if traced {
		if off+traceCtxLen > len(body) {
			return fmt.Errorf("rpc: truncated trace context")
		}
		copy(f.ref.Trace[:], body[off:])
		f.ref.Span = trace.SpanID(binary.LittleEndian.Uint64(body[off+16:]))
		off += traceCtxLen
	}
	if hasBudget {
		if off+deadlineLen > len(body) {
			return fmt.Errorf("rpc: truncated deadline budget")
		}
		// The uint64→int64 cast can go negative on a hostile frame; the
		// server treats any non-positive budget as already expired.
		f.budget = time.Duration(binary.LittleEndian.Uint64(body[off:]))
		f.hasBudget = true
		off += deadlineLen
	}
	f.payload = body[off:]
	return nil
}

// frameReader decodes frames from a connection it exclusively owns. The
// header scratch lives in the struct so the per-read io.ReadFull does not
// force a heap-escaping stack array, and frames come from the pool.
type frameReader struct {
	r   io.Reader
	hdr [4]byte
}

// read decodes the next frame. With pooledBody, the frame body comes from
// the buffer pool and dies at frame release — the shape server reads use,
// where payloads must not outlive the handler. Without it, the body is a
// fresh allocation that survives release, so a response payload can be
// handed to the caller. reused reports buffer-pool reuse for the
// rpc.buf_reuse counters.
func (fr *frameReader) read(pooledBody bool) (f *frame, reused bool, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return nil, false, err
	}
	n := binary.LittleEndian.Uint32(fr.hdr[:])
	if n < 11 || n > maxFrame { // kind(1) + id(8) + methodLen(2) minimum
		return nil, false, ErrTooLarge
	}
	var body []byte
	var p *buf
	if pooledBody {
		p, reused = getBuf(int(n))
		body = p.b
	} else {
		body = make([]byte, n)
	}
	if _, err := io.ReadFull(fr.r, body); err != nil {
		p.release()
		return nil, reused, err
	}
	f = getFrame()
	f.body = p
	if err := parseFrame(f, body); err != nil {
		f.release()
		return nil, reused, err
	}
	return f, reused, nil
}

// readFrame is the standalone decode kept for tests and cold paths: the
// frame is unpooled and method is materialized as a string, exactly the
// historical semantics (the fuzz and golden-bytes tests pin them).
func readFrame(r io.Reader) (*frame, error) {
	fr := frameReader{r: r}
	f, _, err := fr.read(false)
	if err != nil {
		return nil, err
	}
	out := &frame{
		kind:      f.kind,
		id:        f.id,
		method:    string(f.methodB),
		ref:       f.ref,
		budget:    f.budget,
		hasBudget: f.hasBudget,
		payload:   f.payload,
	}
	f.release()
	return out, nil
}

// connWriter serializes and batches frame writes on one connection. A
// writer queues its encoded frame under the mutex; whoever finds no flush
// in progress becomes the flusher and drains the queue with a single
// vectored write (net.Buffers → writev on TCP), so N goroutines responding
// concurrently cost one syscall, not N. Queued buffers are owned by the
// writer and released to the pool after the flush.
//
// Errors are sticky: once a write fails the connection is useless, every
// queued-but-unflushed frame is released, and all subsequent writes fail
// fast. A caller whose frame was queued while another goroutine held the
// flush may get nil even though that flush later fails — the failure still
// surfaces, through the connection teardown the sticky error triggers.
type connWriter struct {
	conn net.Conn

	mu       sync.Mutex
	q        net.Buffers // frames awaiting flush
	rel      []*buf      // their pooled owners, released after flush
	spare    net.Buffers // retired backing arrays, reused to keep append alloc-free
	spareRel []*buf
	wbuf     net.Buffers // WriteTo receiver; only the flusher touches it
	flushing bool
	err      error
}

func (w *connWriter) write(p *buf) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		p.release()
		return err
	}
	w.q = append(w.q, p.b)
	w.rel = append(w.rel, p)
	if w.flushing {
		// The active flusher will pick our frame up in its drain loop.
		w.mu.Unlock()
		return nil
	}
	w.flushing = true
	for len(w.q) > 0 && w.err == nil {
		local, rel := w.q, w.rel
		w.q, w.rel = w.spare, w.spareRel
		w.mu.Unlock()
		// WriteTo advances its receiver and nils consumed entries, so it
		// runs on the wbuf field (a local receiver would escape through
		// the io.Writer call and cost an allocation per flush); the local
		// header still spans the full backing array and is retired as the
		// next spare without losing capacity.
		w.wbuf = local
		_, err := w.wbuf.WriteTo(w.conn)
		w.wbuf = nil
		for _, b := range rel {
			b.release()
		}
		w.mu.Lock()
		w.spare, w.spareRel = local[:0], rel[:0]
		if err != nil {
			w.err = err
			for _, b := range w.rel {
				b.release()
			}
			w.q, w.rel = nil, nil
		}
	}
	w.flushing = false
	err := w.err
	w.mu.Unlock()
	return err
}

// Stats count wire messages for the experiment harness.
type Stats struct {
	MessagesSent     uint64
	MessagesReceived uint64
	Calls            uint64
	OneWays          uint64
}

// Limits bound a server's concurrently executing requests (admission
// control). Zero values mean unlimited. Requests over a limit are shed
// with a kindBusy response, which clients surface as the retryable
// ErrBusy — graceful degradation under overload instead of unbounded
// goroutine and memory growth. One-way messages are never shed (there is
// no reply to shed them with).
type Limits struct {
	// MaxInflight caps requests executing across all connections.
	MaxInflight int
	// MaxPerConn caps requests executing on any single connection.
	MaxPerConn int
}

// Server dispatches incoming calls to registered handlers.
type Server struct {
	mu          sync.RWMutex
	handlers    map[string]Handler
	refHandlers map[string]RefHandler
	ctxHandlers map[string]CtxHandler
	tracer      *trace.Tracer // nil-safe; nil means tracing disabled
	lis         net.Listener
	conns       map[net.Conn]struct{}
	closed      bool
	wg          sync.WaitGroup

	maxInflight atomic.Int64 // 0 = unlimited
	maxPerConn  atomic.Int64 // 0 = unlimited
	inflight    atomic.Int64

	mSent     *obs.Counter
	mRecv     *obs.Counter
	mRequests *obs.Counter
	mOneWays  *obs.Counter
	mErrors   *obs.Counter
	mShed     *obs.Counter // requests rejected by admission control
	mDropped  *obs.Counter // requests abandoned because the caller's deadline expired
	mBufReuse *obs.Counter // frame buffers served from the pool instead of the heap

	logger atomic.Pointer[log.Logger] // nil-safe; connection lifecycle only
}

// NewServer returns an empty server with a private metrics registry.
func NewServer() *Server { return NewServerWith(nil) }

// NewServerWith returns an empty server recording into reg (nil creates a
// private registry).
func NewServerWith(reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{
		handlers:    make(map[string]Handler),
		refHandlers: make(map[string]RefHandler),
		ctxHandlers: make(map[string]CtxHandler),
		conns:       make(map[net.Conn]struct{}),
		mSent:       reg.Counter("rpc.server.sent"),
		mRecv:       reg.Counter("rpc.server.recv"),
		mRequests:   reg.Counter("rpc.server.requests"),
		mOneWays:    reg.Counter("rpc.server.oneways"),
		mErrors:     reg.Counter("rpc.server.errors"),
		mShed:       reg.Counter("server.shed"),
		mDropped:    reg.Counter("rpc.deadline_drops"),
		mBufReuse:   reg.Counter("rpc.buf_reuse"),
	}
}

// Handle registers a handler for method.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// HandleRef registers a trace-aware handler for method. It takes
// precedence over a plain Handler registered under the same name.
func (s *Server) HandleRef(method string, h RefHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refHandlers[method] = h
}

// HandleCtx registers a context-aware handler for method: its ctx carries
// the caller's trace ref and propagated deadline. Takes precedence over
// HandleRef and Handle under the same name.
func (s *Server) HandleCtx(method string, h CtxHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctxHandlers[method] = h
}

// SetLimits installs admission-control limits; the zero Limits removes
// them. Safe to call while serving.
func (s *Server) SetLimits(l Limits) {
	s.maxInflight.Store(int64(l.MaxInflight))
	s.maxPerConn.Store(int64(l.MaxPerConn))
}

// Inflight reports the number of requests currently executing.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// admit reserves an in-flight slot, reporting false (and releasing the
// reservation) when a limit is exceeded.
func (s *Server) admit(connInflight *atomic.Int64) bool {
	in := s.inflight.Add(1)
	pc := connInflight.Add(1)
	if max := s.maxInflight.Load(); max > 0 && in > max {
		s.release(connInflight)
		return false
	}
	if max := s.maxPerConn.Load(); max > 0 && pc > max {
		s.release(connInflight)
		return false
	}
	return true
}

func (s *Server) release(connInflight *atomic.Int64) {
	s.inflight.Add(-1)
	connInflight.Add(-1)
}

// SetTracer installs the tracer used to record server-side "rpc.<method>"
// spans for traced requests. nil (the default) disables recording; trace
// context still flows through to RefHandlers either way.
func (s *Server) SetTracer(tr *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
}

// SetLogger installs the logger for connection lifecycle events (accept,
// close, frame errors). nil (the default) disables logging; the
// per-frame dispatch path never logs.
func (s *Server) SetLogger(l *log.Logger) {
	if l != nil {
		s.logger.Store(l.Named("rpc"))
	}
}

// Stats returns the server's message counters.
func (s *Server) Stats() Stats {
	return Stats{
		MessagesSent:     s.mSent.Value(),
		MessagesReceived: s.mRecv.Value(),
	}
}

// Serve accepts connections on lis until Close. It returns after the
// listener fails (normally because Close closed it).
func (s *Server) Serve(lis net.Listener) {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.logger.Load().Debug("connection accepted",
			log.Str("peer", conn.RemoteAddr().String()))
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr ("127.0.0.1:0" style) and serves in a
// background goroutine, returning the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen: %w", err)
	}
	go s.Serve(lis)
	return lis.Addr().String(), nil
}

// dispatch runs whichever handler shape is registered for f's method; the
// span (when traced) brackets ref/ctx handlers and hands them a child ref
// to parent downstream work under. It is a plain function taking the
// handlers as arguments — not a per-frame adapter closure, which would
// cost an allocation on the plain-handler hot path.
func dispatch(ctx context.Context, tr *trace.Tracer, ch CtxHandler, cok bool, rh RefHandler, rok bool, h Handler, f *frame) ([]byte, error) {
	switch {
	case cok, rok:
		sp, traced := tr.Begin(f.ref, "rpc."+f.methodStr())
		child := f.ref
		if traced {
			child = sp.Ref()
		}
		var out []byte
		var err error
		if cok {
			out, err = ch(trace.With(ctx, child), f.payload)
		} else {
			out, err = rh(child, f.payload)
		}
		if traced {
			tr.Finish(&sp)
		}
		return out, err
	default:
		return h(f.payload)
	}
}

// respond encodes resp and queues it on the connection's writer. The
// response payload is copied during encode, so the caller may release any
// buffers it aliases as soon as respond returns.
func (s *Server) respond(w *connWriter, resp *frame) {
	p, reused, err := encodeFrame(resp)
	if err != nil {
		return
	}
	if reused {
		s.mBufReuse.Inc()
	}
	if w.write(p) == nil {
		s.mSent.Inc()
	}
}

// runOneWay is the one-way dispatch goroutine body: a method, not a
// per-frame closure, so spawning it costs one argument record and nothing
// else. It owns f and releases it after the handler returns.
func (s *Server) runOneWay(tr *trace.Tracer, ch CtxHandler, cok bool, rh RefHandler, rok bool, h Handler, f *frame) {
	dispatch(context.Background(), tr, ch, cok, rh, rok, h, f)
	f.release()
}

// handleRequest is the request goroutine body. It owns f — the payload the
// handler sees aliases f's pooled body, which dies when handleRequest
// returns, so handlers must not retain it (the queue-manager handlers all
// decode into their own structures before returning).
func (s *Server) handleRequest(w *connWriter, connInflight *atomic.Int64, tr *trace.Tracer, ch CtxHandler, cok bool, rh RefHandler, rok bool, h Handler, known bool, f *frame) {
	defer s.release(connInflight)
	ctx := context.Background()
	if f.hasBudget {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.budget)
		defer cancel()
	}
	var resp frame
	resp.id = f.id
	resp.ref = f.ref // echo the trace context on the reply
	if !known {
		resp.kind = kindError
		resp.payload = []byte(ErrNoMethod.Error() + ": " + f.methodStr())
	} else if out, err := dispatch(ctx, tr, ch, cok, rh, rok, h, f); err != nil {
		resp.kind = kindError
		resp.payload = []byte(err.Error())
	} else {
		resp.kind = kindResp
		resp.payload = out
	}
	if f.hasBudget && ctx.Err() != nil {
		// The handler ran past the caller's budget: whatever we
		// write back will be discarded on arrival.
		s.mDropped.Inc()
	}
	if resp.kind == kindError {
		s.mErrors.Inc()
	}
	s.respond(w, &resp)
	f.release()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	w := &connWriter{conn: conn}
	var connInflight atomic.Int64
	fr := frameReader{r: conn}
	for {
		f, reused, err := fr.read(true)
		if err != nil {
			if err != io.EOF {
				s.logger.Load().Debug("connection closed",
					log.Str("peer", conn.RemoteAddr().String()), log.Err(err))
			}
			return
		}
		if reused {
			s.mBufReuse.Inc()
		}
		s.mRecv.Inc()
		s.mu.RLock()
		// map[string(bytes)] lookups compile to allocation-free probes.
		ch, cok := s.ctxHandlers[string(f.methodB)]
		rh, rok := s.refHandlers[string(f.methodB)]
		h, ok := s.handlers[string(f.methodB)]
		tr := s.tracer
		s.mu.RUnlock()
		known := cok || rok || ok
		switch f.kind {
		case kindOneWay:
			s.mOneWays.Inc()
			if known {
				go s.runOneWay(tr, ch, cok, rh, rok, h, f)
			} else {
				f.release()
			}
		case kindRequest:
			s.mRequests.Inc()
			if !s.admit(&connInflight) {
				s.mShed.Inc()
				s.respond(w, &frame{kind: kindBusy, id: f.id})
				f.release()
				continue
			}
			if f.hasBudget && f.budget <= 0 {
				// The caller's budget expired in transit; don't start
				// work it has already abandoned.
				s.mDropped.Inc()
				s.release(&connInflight)
				s.respond(w, &frame{kind: kindError, id: f.id, ref: f.ref,
					payload: []byte(context.DeadlineExceeded.Error())})
				f.release()
				continue
			}
			go s.handleRequest(w, &connInflight, tr, ch, cok, rh, rok, h, known, f)
		default:
			f.release()
		}
	}
}

// Close stops the listener and severs all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Dialer opens a connection to an address; the chaos layer substitutes
// fault-injecting dialers.
type Dialer func(addr string) (net.Conn, error)

// Client calls a Server. It lazily (re)connects on each call after a
// connection failure, so a transient network fault surfaces as one failed
// call, not a dead client.
type Client struct {
	addr   string
	dialer Dialer

	mu      sync.Mutex
	conn    net.Conn
	cw      *connWriter // batching writer for conn; replaced on redial
	pending map[uint64]*call
	nextID  uint64
	closed  bool

	br breaker // per-endpoint circuit breaker; disarmed until SetBreaker

	mSent     *obs.Counter
	mRecv     *obs.Counter
	mCalls    *obs.Counter
	mOneWays  *obs.Counter
	mErrors   *obs.Counter // transport-level failures (dial, write, dropped conn)
	mRedials  *obs.Counter // reconnects after the first successful dial
	mBufReuse *obs.Counter // frame buffers served from the pool instead of the heap
	mCallNans *obs.Histogram
	dialed    bool // a connection has been established at least once
}

// NewClient returns a client for addr with a private metrics registry.
// dialer nil means plain TCP.
func NewClient(addr string, dialer Dialer) *Client {
	return NewClientWith(addr, dialer, nil)
}

// NewClientWith returns a client recording into reg (nil creates a private
// registry).
func NewClientWith(addr string, dialer Dialer, reg *obs.Registry) *Client {
	if dialer == nil {
		dialer = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Client{
		addr:      addr,
		dialer:    dialer,
		pending:   make(map[uint64]*call),
		br:        breaker{opens: reg.Counter("rpc.client.breaker_opens")},
		mSent:     reg.Counter("rpc.client.sent"),
		mRecv:     reg.Counter("rpc.client.recv"),
		mCalls:    reg.Counter("rpc.client.calls"),
		mOneWays:  reg.Counter("rpc.client.oneways"),
		mErrors:   reg.Counter("rpc.client.errors"),
		mRedials:  reg.Counter("rpc.client.redials"),
		mBufReuse: reg.Counter("rpc.buf_reuse"),
		mCallNans: reg.Histogram("rpc.client.call_ns"),
	}
}

// Stats returns the client's message counters.
func (c *Client) Stats() Stats {
	return Stats{
		MessagesSent:     c.mSent.Value(),
		MessagesReceived: c.mRecv.Value(),
		Calls:            c.mCalls.Value(),
		OneWays:          c.mOneWays.Value(),
	}
}

// ensureConnLocked dials if needed. Caller holds c.mu.
func (c *Client) ensureConnLocked() error {
	if c.closed {
		return ErrConnClosed
	}
	if c.conn != nil {
		return nil
	}
	conn, err := c.dialer(c.addr)
	if err != nil {
		c.mErrors.Inc()
		return &TransportError{Op: "dial " + c.addr, Err: err}
	}
	if c.dialed {
		c.mRedials.Inc()
	}
	c.dialed = true
	c.conn = conn
	c.cw = &connWriter{conn: conn}
	go c.readLoop(conn)
	return nil
}

func (c *Client) readLoop(conn net.Conn) {
	fr := frameReader{r: conn}
	for {
		// The body is unpooled on purpose: the response payload is handed
		// to the caller, whose lifetime the pool cannot see.
		f, _, err := fr.read(false)
		if err != nil {
			c.dropConn(conn)
			return
		}
		c.mRecv.Inc()
		c.mu.Lock()
		pc, ok := c.pending[f.id]
		if ok {
			delete(c.pending, f.id)
		}
		c.mu.Unlock()
		if ok {
			pc.done <- f // cap 1, guaranteed empty while registered
		} else {
			f.release() // response to an abandoned (timed-out) call
		}
	}
}

// dropConn tears down a failed connection and fails its pending calls by
// delivering nil (the channels are pooled and never closed).
func (c *Client) dropConn(conn net.Conn) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		c.cw = nil
	}
	stale := c.pending
	c.pending = make(map[uint64]*call)
	c.mu.Unlock()
	conn.Close()
	for _, pc := range stale {
		pc.done <- nil
	}
}

// unregister abandons a pending call. If a sender (readLoop or dropConn)
// already claimed the entry, exactly one value is in flight or already
// buffered; drain it so the pooled channel goes back empty.
func (c *Client) unregister(id uint64, pc *call) {
	c.mu.Lock()
	if _, ok := c.pending[id]; ok {
		delete(c.pending, id)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	if f := <-pc.done; f != nil {
		f.release()
	}
}

// Call performs a request/response RPC. A remote handler error comes back
// as a *RemoteError; transport failures come back as retryable
// *TransportError. Any deadline on ctx is propagated to the server as a
// relative time budget in the request frame (no metadata is added when
// ctx has no deadline, keeping such frames byte-identical to the old
// format).
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	start := time.Now()
	var req frame
	req.kind = kindRequest
	req.method = method
	req.ref = trace.From(ctx)
	req.payload = payload
	if dl, ok := ctx.Deadline(); ok {
		req.budget = time.Until(dl)
		req.hasBudget = true
		if req.budget <= 0 {
			return nil, context.DeadlineExceeded
		}
	}
	if err := c.br.allow(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if err := c.ensureConnLocked(); err != nil {
		c.mu.Unlock()
		c.br.record(err)
		return nil, err
	}
	conn, cw := c.conn, c.cw
	c.nextID++
	id := c.nextID
	req.id = id
	pc := getCall()
	c.pending[id] = pc
	c.mu.Unlock()
	c.mSent.Inc()
	c.mCalls.Inc()

	p, reused, err := encodeFrame(&req)
	if err != nil {
		c.unregister(id, pc)
		putCall(pc)
		return nil, err
	}
	if reused {
		c.mBufReuse.Inc()
	}
	if err := cw.write(p); err != nil {
		c.mErrors.Inc()
		c.unregister(id, pc) // before dropConn, so the pooled channel drains clean
		putCall(pc)
		c.dropConn(conn)
		terr := &TransportError{Op: "write", Err: err}
		c.br.record(terr)
		return nil, terr
	}
	select {
	case f := <-pc.done:
		putCall(pc)
		if f == nil {
			c.mErrors.Inc()
			terr := &TransportError{Op: "call", Err: ErrConnClosed}
			c.br.record(terr)
			return nil, terr
		}
		// A response arrived — a complete round trip, even if the handler
		// reported an error or a shed — so the peer is healthy as far as
		// the breaker cares, and it counts toward the latency histogram.
		c.br.record(nil)
		c.mCallNans.Observe(time.Since(start).Nanoseconds())
		switch f.kind {
		case kindError:
			err := &RemoteError{Msg: string(f.payload)}
			f.release()
			return nil, err
		case kindBusy:
			f.release()
			return nil, fmt.Errorf("%w: %s", ErrBusy, method)
		}
		// The response body is unpooled (see readLoop), so the payload
		// survives the frame's return to the pool.
		out := f.payload
		f.release()
		return out, nil
	case <-ctx.Done():
		c.unregister(id, pc)
		putCall(pc)
		return nil, ctx.Err()
	}
}

// Send transmits a one-way message: no response, no delivery confirmation.
func (c *Client) Send(method string, payload []byte) error {
	return c.SendCtx(context.Background(), method, payload)
}

// SendCtx is Send carrying any trace context attached to ctx as frame
// metadata. The context does not bound the write (one-ways are fire and
// forget); it exists only to propagate the trace ref.
func (c *Client) SendCtx(ctx context.Context, method string, payload []byte) error {
	if err := c.br.allow(); err != nil {
		return err
	}
	c.mu.Lock()
	if err := c.ensureConnLocked(); err != nil {
		c.mu.Unlock()
		c.br.record(err)
		return err
	}
	conn, cw := c.conn, c.cw
	c.mu.Unlock()
	c.mSent.Inc()
	c.mOneWays.Inc()
	var req frame
	req.kind = kindOneWay
	req.method = method
	req.ref = trace.From(ctx)
	req.payload = payload
	p, reused, err := encodeFrame(&req)
	if err != nil {
		return err
	}
	if reused {
		c.mBufReuse.Inc()
	}
	if err := cw.write(p); err != nil {
		c.mErrors.Inc()
		c.dropConn(conn)
		terr := &TransportError{Op: "send", Err: err}
		c.br.record(terr)
		return terr
	}
	c.br.record(nil)
	return nil
}

// Close severs the connection and fails pending calls.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		c.dropConn(conn)
	}
}

// RemoteError is an error produced by the remote handler (as opposed to a
// transport failure — the distinction matters to the clerk's recovery
// logic: a RemoteError means the server received and processed the call).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }
