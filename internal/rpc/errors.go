package rpc

import "errors"

// The error taxonomy of the failure-masking layer. Every error a Client
// surfaces falls in one of two classes:
//
//   - Retryable: the request may or may not have reached the peer; after
//     reconnection the caller may safely try again, provided the operation
//     itself is idempotent or the caller resynchronizes first (the clerk's
//     recovery protocol, Section 3). Dial refusals, mid-stream connection
//     cuts, admission-control sheds, and an open circuit breaker are all
//     retryable.
//   - Terminal: retrying verbatim cannot help. A *RemoteError (the peer
//     received the call and its handler failed), a closed client, or a
//     caller-side context expiry are terminal at this layer.
//
// Retryable classifies an error; TransportError and Terminal let other
// layers mark their own errors explicitly.

var (
	// ErrBusy is the admission-control shed response: the server is alive
	// but over its in-flight limit. Retryable after backoff.
	ErrBusy = errors.New("rpc: server busy")
	// ErrCircuitOpen reports a call rejected locally because the client's
	// circuit breaker is open: the peer has failed repeatedly and the
	// cooldown has not elapsed. Retryable after backoff.
	ErrCircuitOpen = errors.New("rpc: circuit breaker open")
)

// TransportError marks a communication failure where the request may or
// may not have reached the peer: a refused dial, a write onto a severed
// connection, or a connection that died while a response was pending.
// It is always retryable — but because delivery is unknown, a correct
// retry must resynchronize (the clerk re-Connects and consults its
// registration tags) rather than blindly resubmit.
type TransportError struct {
	// Op names the failed step ("dial <addr>", "write", "call", "send").
	Op string
	// Err is the underlying failure.
	Err error
}

func (e *TransportError) Error() string { return "rpc: " + e.Op + ": " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Retryable marks every transport failure as safe to retry after
// resynchronization.
func (e *TransportError) Retryable() bool { return true }

// Terminal wraps an error so Retryable reports false regardless of the
// underlying error's own classification — for callers that must stop a
// retry loop (an exhausted attempt budget, a poison request).
type Terminal struct{ Err error }

func (e *Terminal) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *Terminal) Unwrap() error { return e.Err }

// Retryable marks the error as not retryable.
func (e *Terminal) Retryable() bool { return false }

// Retryable reports whether err is safe to retry after backoff (and, for
// transport failures, resynchronization). An explicit Retryable() method
// anywhere in the chain wins; otherwise only the retryable sentinels
// (ErrBusy, ErrCircuitOpen) qualify.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var r interface{ Retryable() bool }
	if errors.As(err, &r) {
		return r.Retryable()
	}
	return errors.Is(err, ErrBusy) || errors.Is(err, ErrCircuitOpen)
}
