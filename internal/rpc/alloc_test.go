package rpc

// Allocation regressions on the RPC hot path. A request/response round
// trip used to cost 13 heap allocations across both sides of the wire;
// the pooled codec (bufpool.go) brings it to 2 — the caller-owned
// response body and the per-request handler goroutine. The bound leaves
// one object of slack for pool refills after a GC, no more.

import (
	"context"
	"testing"

	"repro/internal/obs"
)

func echoServerClient(t *testing.T, reg *obs.Registry) (*Server, *Client) {
	t.Helper()
	s := NewServerWith(reg)
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c := NewClientWith(addr, nil, reg)
	t.Cleanup(c.Close)
	return s, c
}

func TestCallAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; bound is meaningless")
	}
	_, c := echoServerClient(t, nil)
	ctx := context.Background()
	payload := make([]byte, 128)
	if _, err := c.Call(ctx, "echo", payload); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := c.Call(ctx, "echo", payload); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 3 {
		t.Fatalf("RPC round trip allocates %.2f objects/op, want <= 3", avg)
	}
}

func TestBufReuseCounter(t *testing.T) {
	reg := obs.NewRegistry()
	_, c := echoServerClient(t, reg)
	ctx := context.Background()
	payload := make([]byte, 128)
	for i := 0; i < 50; i++ {
		if _, err := c.Call(ctx, "echo", payload); err != nil {
			t.Fatal(err)
		}
	}
	// Client and server share reg here, so one counter sees both sides:
	// request encode + server read + response encode per round trip, minus
	// cold misses while the pools warm.
	if v := reg.Counter("rpc.buf_reuse").Value(); v < 100 {
		t.Fatalf("rpc.buf_reuse = %d after 50 calls, want >= 100", v)
	}
}
