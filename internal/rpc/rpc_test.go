package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c := NewClient(addr, nil)
	t.Cleanup(c.Close)
	return s, c
}

func TestCallRoundTrip(t *testing.T) {
	s, c := newPair(t)
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	out, err := c.Call(context.Background(), "echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte("hello")) {
		t.Fatalf("echo = %q", out)
	}
}

func TestRemoteError(t *testing.T) {
	s, c := newPair(t)
	s.Handle("fail", func(p []byte) ([]byte, error) { return nil, errors.New("kaboom") })
	_, err := c.Call(context.Background(), "fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "kaboom" {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, c := newPair(t)
	_, err := c.Call(context.Background(), "nope", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "no such method") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	s, c := newPair(t)
	s.Handle("double", func(p []byte) ([]byte, error) {
		return append(p, p...), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := []byte(fmt.Sprintf("m%d", i))
			out, err := c.Call(context.Background(), "double", in)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if !bytes.Equal(out, append(in, in...)) {
				t.Errorf("call %d: got %q", i, out)
			}
		}(i)
	}
	wg.Wait()
}

func TestSlowHandlerDoesNotBlockOthers(t *testing.T) {
	s, c := newPair(t)
	release := make(chan struct{})
	s.Handle("slow", func(p []byte) ([]byte, error) { <-release; return []byte("slow"), nil })
	s.Handle("fast", func(p []byte) ([]byte, error) { return []byte("fast"), nil })

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "slow", nil)
		slowDone <- err
	}()
	// The fast call must complete while slow is parked.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := c.Call(ctx, "fast", nil)
	if err != nil || string(out) != "fast" {
		t.Fatalf("fast call blocked: %q %v", out, err)
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

func TestOneWay(t *testing.T) {
	s, c := newPair(t)
	got := make(chan []byte, 1)
	s.Handle("fire", func(p []byte) ([]byte, error) {
		got <- append([]byte(nil), p...)
		return nil, nil
	})
	if err := c.Send("fire", []byte("async")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "async" {
			t.Fatalf("one-way payload %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("one-way never arrived")
	}
}

func TestOneWaySavesAMessage(t *testing.T) {
	// The paper's Section 5 point: one-way Send costs one wire message; an
	// RPC costs two.
	s, c := newPair(t)
	done := make(chan struct{}, 8)
	s.Handle("op", func(p []byte) ([]byte, error) { done <- struct{}{}; return nil, nil })
	if _, err := c.Call(context.Background(), "op", nil); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := c.Send("op", nil); err != nil {
		t.Fatal(err)
	}
	<-done
	cs := c.Stats()
	if cs.MessagesSent != 2 || cs.MessagesReceived != 1 {
		t.Fatalf("client stats = %+v, want 2 sent / 1 received", cs)
	}
	// Server: received 2, sent 1 (response to the call only).
	deadline := time.Now().Add(2 * time.Second)
	for {
		ss := s.Stats()
		if ss.MessagesReceived == 2 && ss.MessagesSent == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server stats = %+v", ss)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestContextCancel(t *testing.T) {
	s, c := newPair(t)
	s.Handle("hang", func(p []byte) ([]byte, error) {
		time.Sleep(5 * time.Second)
		return nil, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, "hang", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	s, c := newPair(t)
	s.Handle("hang", func(p []byte) ([]byte, error) {
		time.Sleep(10 * time.Second)
		return nil, nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "hang", nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("err = %v, want ErrConnClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not failed by server close")
	}
}

func TestClientReconnectsAfterConnFailure(t *testing.T) {
	s := NewServer()
	s.Handle("ping", func(p []byte) ([]byte, error) { return []byte("pong"), nil })
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	var conns []net.Conn
	var connMu sync.Mutex
	dialer := func(a string) (net.Conn, error) {
		conn, err := net.Dial("tcp", a)
		if err == nil {
			connMu.Lock()
			conns = append(conns, conn)
			connMu.Unlock()
		}
		return conn, err
	}
	c := NewClient(addr, dialer)
	t.Cleanup(c.Close)
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	// Cut the connection out from under the client.
	connMu.Lock()
	conns[0].Close()
	connMu.Unlock()
	// The next call (possibly after one failure) transparently redials.
	deadline := time.Now().Add(2 * time.Second)
	for {
		out, err := c.Call(context.Background(), "ping", nil)
		if err == nil && string(out) == "pong" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered: %v", err)
		}
	}
}

func TestClosedClientRejectsCalls(t *testing.T) {
	_, c := newPair(t)
	c.Close()
	if _, err := c.Call(context.Background(), "x", nil); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Send("x", nil); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("send err = %v", err)
	}
}

func TestLargePayload(t *testing.T) {
	s, c := newPair(t)
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	big := bytes.Repeat([]byte("x"), 1<<20)
	out, err := c.Call(context.Background(), "echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, big) {
		t.Fatal("large payload corrupted")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	_, c := newPair(t)
	too := make([]byte, maxFrame+1)
	if _, err := c.Call(context.Background(), "x", too); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestManySequentialCalls(t *testing.T) {
	s, c := newPair(t)
	var count atomic.Int64
	s.Handle("inc", func(p []byte) ([]byte, error) {
		count.Add(1)
		return nil, nil
	})
	for i := 0; i < 500; i++ {
		if _, err := c.Call(context.Background(), "inc", nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if count.Load() != 500 {
		t.Fatalf("count = %d", count.Load())
	}
}
