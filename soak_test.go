package repro

// The system soak test: one node hosting an echo service, a funds-transfer
// saga, and a conversational server, serving three concurrent client
// workloads while the node itself is crash-cycled (full recovery from the
// write-ahead log each time) and servers are restarted. At the end, every
// paper guarantee is checked at once: exactly-once execution, at-least-once
// reply processing, request/reply matching, money conservation across
// completed and compensated transfers, and conversation-state integrity.

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/rrq"
)

// soakWorld owns the crash-cycled node and rebuilds its servers after every
// recovery.
type soakWorld struct {
	t   *testing.T
	dir string

	mu   sync.RWMutex
	node *rrq.Node
	gen  int // bumped at every recovery

	serveCtx    context.Context
	serveCancel context.CancelFunc
}

func (w *soakWorld) current() (*rrq.Node, int) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.node, w.gen
}

func soakAdjust(rc *rrq.ReqCtx, acct string, delta int) error {
	v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "acct", acct, true)
	if err != nil {
		return err
	}
	n := 0
	if v != nil {
		n, _ = strconv.Atoi(string(v))
	}
	return rc.Repo.KVSet(rc.Ctx, rc.Txn, "acct", acct, []byte(strconv.Itoa(n+delta)))
}

func soakSagaSteps() []rrq.SagaStep {
	step := func(acct string, delta int) rrq.SagaStep {
		return rrq.SagaStep{
			Name: acct,
			Action: func(rc *rrq.ReqCtx) ([]byte, []byte, error) {
				if err := soakAdjust(rc, acct, delta); err != nil {
					return nil, nil, err
				}
				return rc.Request.Body, nil, nil
			},
			Compensate: func(rc *rrq.ReqCtx) ([]byte, []byte, error) {
				return nil, nil, soakAdjust(rc, acct, -delta)
			},
		}
	}
	return []rrq.SagaStep{step("alice", -10), step("bob", +10)}
}

// startServers wires every service onto the current node.
func (w *soakWorld) startServers(node *rrq.Node) {
	// Echo service with exactly-once witness, two instances.
	for i := 0; i < 2; i++ {
		srv, err := rrq.NewServer(rrq.ServerConfig{
			Repo: node.Repo(), Queue: "echo", Name: fmt.Sprintf("echo-%d", i),
			Handler: func(rc *rrq.ReqCtx) ([]byte, error) {
				v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "execs", rc.Request.RID, true)
				if err != nil {
					return nil, err
				}
				n := 0
				if v != nil {
					n, _ = strconv.Atoi(string(v))
				}
				if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "execs", rc.Request.RID, []byte(strconv.Itoa(n+1))); err != nil {
					return nil, err
				}
				return append([]byte("echo:"), rc.Request.Body...), nil
			},
		})
		if err != nil {
			w.t.Error(err)
			return
		}
		go srv.Serve(w.serveCtx)
	}
	// The transfer saga.
	saga, err := rrq.NewSaga(rrq.SagaConfig{Repo: node.Repo(), Name: "xfer", Steps: soakSagaSteps()})
	if err != nil {
		w.t.Error(err)
		return
	}
	go saga.Serve(w.serveCtx)
	// The conversational seat server.
	go rrq.ServeConversational(w.serveCtx, rrq.ConvServerConfig{
		Repo: node.Repo(), Queue: "conv",
		Handler: func(rc *rrq.ReqCtx, state, input []byte, round int) ([]byte, []byte, bool, error) {
			switch round {
			case 0:
				return []byte("offer:" + string(input)), []byte("pick a seat"), false, nil
			case 1:
				newState := append(state, []byte("|"+string(input))...)
				return newState, []byte("confirm?"), false, nil
			default:
				base, _, _ := strings.Cut(rc.Request.RID, "#")
				if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "bookings", base, state); err != nil {
					return nil, nil, false, err
				}
				return nil, append([]byte("booked:"), state...), true, nil
			}
		},
	})
}

// crashCycle crashes the node and recovers it.
func (w *soakWorld) crashCycle() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.serveCancel()
	w.node.Crash()
	node, err := rrq.StartNode(rrq.NodeConfig{Dir: w.dir, NoFsync: true})
	if err != nil {
		w.t.Errorf("recovery: %v", err)
		return
	}
	w.node = node
	w.gen++
	w.serveCtx, w.serveCancel = context.WithCancel(context.Background())
	w.startServers(node)
}

func TestSystemSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	dir := t.TempDir()
	node, err := rrq.StartNode(rrq.NodeConfig{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"echo", "conv"} {
		if err := node.CreateQueue(rrq.QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := node.Repo().KVSet(ctx, nil, "acct", "alice", []byte("1000")); err != nil {
		t.Fatal(err)
	}
	if err := node.Repo().KVSet(ctx, nil, "acct", "bob", []byte("0")); err != nil {
		t.Fatal(err)
	}
	// The saga's queues must exist before clients send.
	if _, err := rrq.NewSaga(rrq.SagaConfig{Repo: node.Repo(), Name: "xfer", Steps: soakSagaSteps()}); err != nil {
		t.Fatal(err)
	}

	w := &soakWorld{t: t, dir: dir, node: node, gen: 0}
	w.serveCtx, w.serveCancel = context.WithCancel(ctx)
	w.startServers(node)
	t.Cleanup(func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		w.serveCancel()
		w.node.Close()
	})

	// The crash gremlin: 4 full node crash/recover cycles while the
	// workloads run.
	gremlinDone := make(chan struct{})
	go func() {
		defer close(gremlinDone)
		rng := rand.New(rand.NewSource(1990))
		for k := 0; k < 4; k++ {
			time.Sleep(time.Duration(80+rng.Intn(120)) * time.Millisecond)
			w.crashCycle()
		}
	}()

	var wg sync.WaitGroup
	deadline := time.Now().Add(90 * time.Second)

	// Workload A: sequential echo client (the fig. 2 program), retried
	// across node crashes.
	const echoTotal = 40
	echoProcessed := make(map[int]int)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			n, _ := w.current()
			sc := &rrq.SequentialClient{
				QM:    n.LocalConn(),
				Cfg:   rrq.ClerkConfig{ClientID: "soak-echo", RequestQueue: "echo", ReceiveWait: 250 * time.Millisecond},
				Total: echoTotal,
				Body:  func(i int) []byte { return []byte(fmt.Sprintf("w%d", i)) },
				ProcessReply: func(i int, rep rrq.Reply) {
					echoProcessed[i]++
				},
			}
			if err := sc.Run(ctx); err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Error("echo workload never completed")
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Workload B: transfers through the saga; every reply is ok or
	// canceled; conservation must hold either way.
	const transfers = 15
	okTransfers := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for i < transfers {
			if time.Now().After(deadline) {
				t.Error("transfer workload never completed")
				return
			}
			n, _ := w.current()
			err := func() error {
				clerk := rrq.NewClerk(n.LocalConn(), rrq.ClerkConfig{
					ClientID: "soak-xfer", RequestQueue: "xfer.s0", ReceiveWait: 250 * time.Millisecond,
				})
				info, err := clerk.Connect(ctx)
				if err != nil {
					return err
				}
				if info.Outstanding {
					rep, err := clerk.Receive(ctx, nil)
					if err != nil {
						return err
					}
					if rep.Status == rrq.StatusOK {
						okTransfers++
					}
					fmt.Sscanf(info.SRID, "xfer-%d", &i)
					i++
				}
				for ; i < transfers; i++ {
					rid := fmt.Sprintf("xfer-%06d", i)
					if err := clerk.Send(ctx, rid, []byte("move"), nil); err != nil {
						return err
					}
					rep, err := clerk.Receive(ctx, nil)
					if err != nil {
						return err
					}
					if rep.RID != rid {
						t.Errorf("transfer reply mismatch: %q for %q", rep.RID, rid)
					}
					if rep.Status == rrq.StatusOK {
						okTransfers++
					}
				}
				return nil
			}()
			if err == nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Workload C: conversations, resumed across crashes.
	const convs = 5
	booked := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := 0
		for c < convs {
			if time.Now().After(deadline) {
				t.Error("conversation workload never completed")
				return
			}
			n, _ := w.current()
			err := func() error {
				clerk := rrq.NewClerk(n.LocalConn(), rrq.ClerkConfig{
					ClientID: "soak-conv", RequestQueue: "conv", ReceiveWait: 250 * time.Millisecond,
				})
				info, err := clerk.Connect(ctx)
				if err != nil {
					return err
				}
				var sess *rrq.InteractiveSession
				if info.Outstanding {
					sess = clerk.ResumeInteractive(info.SRID)
					fmt.Sscanf(info.SRID, "conv-%d", &c)
				} else {
					sess = clerk.Interactive(fmt.Sprintf("conv-%06d", c))
					if err := sess.Start(ctx, []byte("economy")); err != nil {
						return err
					}
				}
				for {
					rep, done, err := sess.Receive(ctx, nil)
					if err != nil {
						return err
					}
					if done {
						if strings.HasPrefix(string(rep.Body), "booked:") {
							booked++
						}
						c++
						if c >= convs {
							return nil
						}
						sess = clerk.Interactive(fmt.Sprintf("conv-%06d", c))
						if err := sess.Start(ctx, []byte("economy")); err != nil {
							return err
						}
						continue
					}
					if strings.Contains(string(rep.Body), "pick") {
						if err := sess.SendInput(ctx, []byte("12C")); err != nil {
							return err
						}
					} else {
						if err := sess.SendInput(ctx, []byte("yes")); err != nil {
							return err
						}
					}
				}
			}()
			if err == nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	<-gremlinDone
	if t.Failed() {
		return
	}

	// --- the verdicts ---
	final, gen := w.current()
	if gen == 0 {
		t.Fatal("gremlin never crashed the node; soak is vacuous")
	}
	t.Logf("survived %d node crash/recovery cycles; %d/%d transfers completed (rest canceled/none)", gen, okTransfers, transfers)

	// Exactly-once echo execution, at-least-once reply processing.
	for i := 0; i < echoTotal; i++ {
		rid := fmt.Sprintf("rid-%06d", i)
		v, _, err := final.Repo().KVGet(ctx, nil, "execs", rid, false)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := strconv.Atoi(string(v))
		if n != 1 {
			t.Errorf("echo %s executed %d times", rid, n)
		}
		if echoProcessed[i] < 1 {
			t.Errorf("echo reply %d processed %d times", i, echoProcessed[i])
		}
	}

	// Conservation: alice + bob == 1000 always; completed transfers moved
	// exactly 10 each.
	getBal := func(acct string) int {
		v, _, _ := final.Repo().KVGet(ctx, nil, "acct", acct, false)
		n, _ := strconv.Atoi(string(v))
		return n
	}
	alice, bob := getBal("alice"), getBal("bob")
	if alice+bob != 1000 {
		t.Errorf("money created or destroyed: alice=%d bob=%d", alice, bob)
	}
	if bob != okTransfers*10 {
		t.Errorf("bob=%d, want %d (10 per completed transfer)", bob, okTransfers*10)
	}

	// Conversations: every booked conversation has a durable record with
	// the chosen seat.
	bookedRecords := 0
	for c := 0; c < convs; c++ {
		v, ok, _ := final.Repo().KVGet(ctx, nil, "bookings", fmt.Sprintf("conv-%06d", c), false)
		if ok {
			bookedRecords++
			if !strings.Contains(string(v), "12C") {
				t.Errorf("booking %d lost its seat: %q", c, v)
			}
		}
	}
	if bookedRecords != booked {
		t.Errorf("booked replies %d but %d durable records", booked, bookedRecords)
	}
	if booked != convs {
		t.Errorf("booked %d of %d conversations", booked, convs)
	}
}
