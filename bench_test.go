package repro

// testing.B benchmarks, one family per EXPERIMENTS.md experiment. These
// measure the steady-state cost of each mechanism; cmd/reprobench runs the
// full parameter sweeps and prints the experiment tables.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/core/baseline"
	"repro/internal/queue"
	"repro/internal/queue/qservice"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/tpc"
	"repro/internal/txn"
)

func benchRepo(b *testing.B) *queue.Repository {
	b.Helper()
	return benchRepoOpts(b, queue.Options{NoFsync: true})
}

func benchRepoOpts(b *testing.B, opts queue.Options) *queue.Repository {
	b.Helper()
	repo, _, err := queue.Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { repo.Close() })
	return repo
}

func mustQueue(b *testing.B, repo *queue.Repository, cfg queue.QueueConfig) {
	b.Helper()
	if err := repo.CreateQueue(cfg); err != nil {
		b.Fatal(err)
	}
}

// --- E1: full queued request/reply round trip vs raw RPC ---

func BenchmarkE1_QueuedRequestReply(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "req"})
	srv, err := core.NewServer(core.ServerConfig{Repo: repo, Queue: "req", Handler: func(rc *core.ReqCtx) ([]byte, error) {
		return rc.Request.Body, nil
	}})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	go srv.Serve(ctx)
	clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{ClientID: "b", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		b.Fatal(err)
	}
	body := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clerk.Transceive(ctx, fmt.Sprintf("r%d", i), body, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_RawRPCRequestReply(b *testing.B) {
	repo := benchRepo(b)
	srv := rpc.NewServer()
	(&baseline.RawServer{Repo: repo, Handler: func(ctx context.Context, t *txn.Txn, rid string, body []byte) ([]byte, error) {
		return body, nil
	}}).Attach(srv)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	rc := &baseline.RawClient{RC: rpc.NewClient(addr, nil), Timeout: 5 * time.Second}
	b.Cleanup(rc.RC.Close)
	body := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, outcome := rc.Do(fmt.Sprintf("r%d", i), body); outcome == baseline.RawLost {
			b.Fatal("lost")
		}
	}
}

// --- E2: lock held across reply processing vs not ---

func BenchmarkE2_OneTxnHotAccount(b *testing.B) {
	repo := benchRepo(b)
	handler := benchHotHandler(repo)
	ctx := context.Background()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if err := baseline.OneTxnRequest(ctx, repo, handler, "r", nil, func([]byte) {
				time.Sleep(100 * time.Microsecond) // reply processing in txn
			}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkE2_QueuedHotAccount(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "req"})
	handler := benchHotHandler(repo)
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	for s := 0; s < 4; s++ {
		srv, err := core.NewServer(core.ServerConfig{Repo: repo, Queue: "req", Name: fmt.Sprintf("s%d", s),
			Handler: func(rc *core.ReqCtx) ([]byte, error) {
				return handler(rc.Ctx, rc.Txn, rc.Request.RID, rc.Request.Body)
			}})
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ctx)
	}
	var cid atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{
			ClientID: fmt.Sprintf("c%d", cid.Add(1)), RequestQueue: "req"})
		if _, err := clerk.Connect(ctx); err != nil {
			b.Error(err)
			return
		}
		i := 0
		for pb.Next() {
			i++
			if _, err := clerk.Transceive(ctx, fmt.Sprintf("r%d", i), nil, nil, nil); err != nil {
				b.Error(err)
				return
			}
			time.Sleep(100 * time.Microsecond) // reply processing outside txn
		}
	})
}

func benchHotHandler(repo *queue.Repository) baseline.Handler {
	return func(ctx context.Context, t *txn.Txn, rid string, body []byte) ([]byte, error) {
		v, _, err := repo.KVGet(ctx, t, "acct", "hot", true)
		if err != nil {
			return nil, err
		}
		n := 0
		if v != nil {
			n, _ = strconv.Atoi(string(v))
		}
		return nil, repo.KVSet(ctx, t, "acct", "hot", []byte(strconv.Itoa(n+1)))
	}
}

// --- E3: dequeue under contention, skip-locked vs strict ---

func benchmarkE3(b *testing.B, strict bool) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "q", StrictFIFO: strict})
	// Keep the queue stocked so dequeues never block.
	for i := 0; i < 1024; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: []byte("x")}, "", nil); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			t := repo.Begin()
			if _, err := repo.Dequeue(ctx, t, "q", "", queue.DequeueOpts{Wait: true}); err != nil {
				t.Abort()
				b.Error(err)
				return
			}
			if _, err := repo.Enqueue(t, "q", queue.Element{Body: []byte("x")}, "", nil); err != nil {
				t.Abort()
				b.Error(err)
				return
			}
			if err := t.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkE3_SkipLockedDequeue(b *testing.B) { benchmarkE3(b, false) }
func BenchmarkE3_StrictFIFODequeue(b *testing.B) { benchmarkE3(b, true) }

// --- E4: the three-transaction pipeline hop ---

func BenchmarkE4_PipelineThreeStageTransfer(b *testing.B) {
	benchmarkE4(b, false)
}

func BenchmarkE4_PipelineWithLockInheritance(b *testing.B) {
	benchmarkE4(b, true)
}

func benchmarkE4(b *testing.B, inherit bool) {
	repo := benchRepo(b)
	stages := []core.Stage{
		{Name: "a", Handler: func(rc *core.ReqCtx) ([]byte, []byte, error) {
			v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "acct", "hot", true)
			if v == nil {
				v = []byte("0")
			}
			return rc.Request.Body, v, err
		}},
		{Name: "b", Handler: func(rc *core.ReqCtx) ([]byte, []byte, error) {
			return rc.Request.Body, rc.Request.ScratchPad, nil
		}},
		{Name: "c", Handler: func(rc *core.ReqCtx) ([]byte, []byte, error) {
			n, _ := strconv.Atoi(string(rc.Request.ScratchPad))
			return []byte("done"), nil, rc.Repo.KVSet(rc.Ctx, rc.Txn, "acct", "hot", []byte(strconv.Itoa(n+1)))
		}},
	}
	pipe, err := core.NewPipeline(core.PipelineConfig{Repo: repo, Name: "p", Stages: stages, LockInheritance: inherit, Instances: 2})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	go pipe.Serve(ctx)
	clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{ClientID: "b", RequestQueue: pipe.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clerk.Transceive(ctx, fmt.Sprintf("r%d", i), nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: the abort-return path (retry bookkeeping) ---

func BenchmarkE5_DequeueAbortReturn(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "q"})
	if _, err := repo.Enqueue(nil, "q", queue.Element{Body: []byte("x")}, "", nil); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := repo.Begin()
		if _, err := repo.Dequeue(ctx, t, "q", "", queue.DequeueOpts{}); err != nil {
			b.Fatal(err)
		}
		if err := t.Abort(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Send variants over RPC ---

func benchmarkE6(b *testing.B, oneWay, transceive bool) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "req"})
	srv, err := core.NewServer(core.ServerConfig{Repo: repo, Queue: "req", Handler: func(rc *core.ReqCtx) ([]byte, error) {
		return nil, nil
	}})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	go srv.Serve(ctx)
	rsrv := rpc.NewServer()
	qservice.New(repo, rsrv)
	addr, err := rsrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rsrv.Close)
	qc := qservice.NewClient(rpc.NewClient(addr, nil))
	b.Cleanup(qc.Close)
	clerk := core.NewClerk(qc, core.ClerkConfig{ClientID: "b", RequestQueue: "req", OneWaySend: oneWay})
	if _, err := clerk.Connect(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rid := fmt.Sprintf("r%d", i)
		if transceive {
			if _, err := clerk.Transceive(ctx, rid, nil, nil, nil); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if err := clerk.Send(ctx, rid, nil, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := clerk.Receive(ctx, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_RemoteSendRPC(b *testing.B)    { benchmarkE6(b, false, false) }
func BenchmarkE6_RemoteSendOneWay(b *testing.B) { benchmarkE6(b, true, false) }
func BenchmarkE6_RemoteTransceive(b *testing.B) { benchmarkE6(b, false, true) }

// --- E7: the recovery path (connect-time resynchronisation) ---

func BenchmarkE7_ConnectResync(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "req"})
	ctx := context.Background()
	// One registration with history to resynchronize against.
	clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		b.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-1", nil, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{ClientID: "c", RequestQueue: "req"})
		info, err := c.Connect(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if !info.Outstanding {
			b.Fatal("lost outstanding request")
		}
	}
}

// --- E8: raw queue-manager operations ---

func BenchmarkE8_EnqueueDurable(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "q"})
	body := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: body}, "", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_EnqueueVolatile(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "q", Volatile: true})
	body := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: body}, "", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_EnqueueDequeuePair(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "q"})
	ctx := context.Background()
	body := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: body}, "", nil); err != nil {
			b.Fatal(err)
		}
		if _, err := repo.Dequeue(ctx, nil, "q", "", queue.DequeueOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_TaggedEnqueue(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "q"})
	h, _, err := repo.Register("q", "c", true)
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, 128)
	tag := []byte("rid-000042")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Enqueue(nil, queue.Element{Body: body}, tag); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_Checkpoint1kElements(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "q"})
	for i := 0; i < 1000; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: make([]byte, 128)}, "", nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := repo.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_RecoveryReplay1kOps(b *testing.B) {
	dir := b.TempDir()
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: make([]byte, 128)}, "", nil); err != nil {
			b.Fatal(err)
		}
	}
	repo.Crash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _, err := queue.Open(dir, queue.Options{NoFsync: true})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		r.Crash()
		b.StartTimer()
	}
}

// --- E9: one conversation round, pseudo-conversational ---

func BenchmarkE9_PseudoConversationalRound(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "req"})
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	go core.ServeConversational(ctx, core.ConvServerConfig{Repo: repo, Queue: "req",
		Handler: func(rc *core.ReqCtx, state, input []byte, round int) ([]byte, []byte, bool, error) {
			if round == 1 {
				return nil, []byte("done"), true, nil
			}
			return []byte("s"), []byte("more?"), false, nil
		}})
	clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{ClientID: "b", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := clerk.Interactive(fmt.Sprintf("r%d", i))
		if err := sess.Start(ctx, nil); err != nil {
			b.Fatal(err)
		}
		if _, done, err := sess.Receive(ctx, nil); err != nil || done {
			b.Fatalf("round 0: %v %v", done, err)
		}
		if err := sess.SendInput(ctx, []byte("x")); err != nil {
			b.Fatal(err)
		}
		if _, done, err := sess.Receive(ctx, nil); err != nil || !done {
			b.Fatalf("final: %v %v", done, err)
		}
	}
}

// --- E10: parallel consumption throughput ---

func BenchmarkE10_ParallelConsumers(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "q"})
	for i := 0; i < 4096; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: []byte("x")}, "", nil); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			t := repo.Begin()
			if _, err := repo.Dequeue(ctx, t, "q", "", queue.DequeueOpts{Wait: true}); err != nil {
				t.Abort()
				b.Error(err)
				return
			}
			if _, err := repo.Enqueue(t, "q", queue.Element{Body: []byte("x")}, "", nil); err != nil {
				t.Abort()
				b.Error(err)
				return
			}
			if err := t.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --- queue sharding: disjoint-queue contention ---

// benchmarkShardedContention runs one producer and one blocking consumer
// per queue on nq disjoint queues — a multi-tenant repository where each
// tenant is mostly idle (a global pacing token keeps one element in flight
// across the repository, so at every commit the other tenants' consumers
// are parked on empty queues). Independent queues should not serialize
// against each other, and a commit on one queue should wake only that
// queue's consumer — the benchmark degrades with nq when every visibility
// change wakes every parked consumer with a repository-global broadcast,
// because each of the nq-1 idle consumers then rescans its empty queue
// under the global mutex.
//
// The volatile variant takes the WAL out of the picture entirely, so the
// repository's concurrency control (locks and wakeups) is the entire
// measured cost; the durable variant shows the same effect diluted by the
// per-commit log write.
func benchmarkShardedContention(b *testing.B, nq int, volatile, group bool) {
	repo := benchRepoOpts(b, queue.Options{NoFsync: true, GroupCommit: group})
	for i := 0; i < nq; i++ {
		mustQueue(b, repo, queue.QueueConfig{Name: fmt.Sprintf("q%d", i), Volatile: volatile})
	}
	ctx := context.Background()
	perQ := b.N/nq + 1
	body := []byte("x")
	token := make(chan struct{}, 1) // one element in flight repository-wide
	token <- struct{}{}
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < nq; i++ {
		qname := fmt.Sprintf("q%d", i)
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < perQ; j++ {
				<-token
				if _, err := repo.Enqueue(nil, qname, queue.Element{Body: body}, "", nil); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < perQ; j++ {
				if _, err := repo.Dequeue(ctx, nil, qname, "", queue.DequeueOpts{Wait: true}); err != nil {
					b.Error(err)
					return
				}
				token <- struct{}{}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkRepositoryShardedContention_1Q(b *testing.B) {
	benchmarkShardedContention(b, 1, true, false)
}
func BenchmarkRepositoryShardedContention_4Q(b *testing.B) {
	benchmarkShardedContention(b, 4, true, false)
}
func BenchmarkRepositoryShardedContention_16Q(b *testing.B) {
	benchmarkShardedContention(b, 16, true, false)
}

func BenchmarkRepositoryShardedContention_16QDurable(b *testing.B) {
	benchmarkShardedContention(b, 16, false, false)
}

func BenchmarkRepositoryShardedContention_16QDurableGroup(b *testing.B) {
	benchmarkShardedContention(b, 16, false, true)
}

// --- volatile fast path: stocked producer/consumer throughput ---

// benchmarkFastpathContention runs one producer and one non-blocking
// consumer per queue on nq disjoint volatile queues, each queue pre-stocked
// with a cushion of elements so consumers never park. Unlike
// benchmarkShardedContention — whose single repository-wide pacing token
// keeps exactly one element in flight and therefore measures wakeup
// targeting, not op throughput — this is the regime the lock-free volatile
// fast path serves: auto-committed, unfiltered, non-waiting traffic where
// the per-op shard mutex (or its absence) is the entire measured cost.
func benchmarkFastpathContention(b *testing.B, nq int) {
	repo := benchRepoOpts(b, queue.Options{NoFsync: true})
	const cushion = 64
	for i := 0; i < nq; i++ {
		qname := fmt.Sprintf("q%d", i)
		mustQueue(b, repo, queue.QueueConfig{Name: qname, Volatile: true})
		for j := 0; j < cushion; j++ {
			if _, err := repo.Enqueue(nil, qname, queue.Element{}, "", nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	ctx := context.Background()
	perQ := b.N/nq + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < nq; i++ {
		qname := fmt.Sprintf("q%d", i)
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < perQ; j++ {
				if _, err := repo.Enqueue(nil, qname, queue.Element{}, "", nil); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < perQ; j++ {
				for {
					_, err := repo.Dequeue(ctx, nil, qname, "", queue.DequeueOpts{})
					if err == nil {
						break
					}
					if !errors.Is(err, queue.ErrEmpty) {
						b.Error(err)
						return
					}
					runtime.Gosched() // producer briefly behind the cushion
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkRepositoryShardedContentionFastpath_1Q(b *testing.B) {
	benchutil.WithGOMAXPROCS(b, benchutil.Procs, func(b *testing.B) {
		benchmarkFastpathContention(b, 1)
	})
}

func BenchmarkRepositoryShardedContentionFastpath_16Q(b *testing.B) {
	benchutil.WithGOMAXPROCS(b, benchutil.Procs, func(b *testing.B) {
		benchmarkFastpathContention(b, 16)
	})
}

// --- group commit: concurrent durable commit throughput ---

// benchmarkGroupCommitThroughput is the regime group commit exists for:
// one producer and one blocking consumer per queue with a *per-queue*
// pacing token, so up to nq commits are in flight at once and the log
// writer can coalesce them. Compare the volatile arm (no WAL at all),
// the plain durable arm (every commit forces for itself), and the
// group-commit arm (staged commits share forces, locks release at the
// stage point). The contention benchmark above intentionally keeps one
// element in flight repository-wide and therefore measures the
// *uncontended* group-commit overhead — a batch of one plus a writer
// handoff — not the amortization.
func benchmarkGroupCommitThroughput(b *testing.B, nq int, volatile, group bool) {
	repo := benchRepoOpts(b, queue.Options{NoFsync: true, GroupCommit: group})
	for i := 0; i < nq; i++ {
		mustQueue(b, repo, queue.QueueConfig{Name: fmt.Sprintf("q%d", i), Volatile: volatile})
	}
	ctx := context.Background()
	perQ := b.N/nq + 1
	body := []byte("x")
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < nq; i++ {
		qname := fmt.Sprintf("q%d", i)
		token := make(chan struct{}, 1) // one element in flight per queue
		token <- struct{}{}
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < perQ; j++ {
				<-token
				if _, err := repo.Enqueue(nil, qname, queue.Element{Body: body}, "", nil); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < perQ; j++ {
				if _, err := repo.Dequeue(ctx, nil, qname, "", queue.DequeueOpts{Wait: true}); err != nil {
					b.Error(err)
					return
				}
				token <- struct{}{}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkRepositoryGroupCommit_16QVolatile(b *testing.B) {
	benchmarkGroupCommitThroughput(b, 16, true, false)
}

func BenchmarkRepositoryGroupCommit_16QDurable(b *testing.B) {
	benchmarkGroupCommitThroughput(b, 16, false, false)
}

func BenchmarkRepositoryGroupCommit_16QDurableGroup(b *testing.B) {
	benchmarkGroupCommitThroughput(b, 16, false, true)
}

// --- E11: cancellation primitive ---

func BenchmarkE11_KillElement(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "q"})
	eids := make([]queue.EID, b.N)
	for i := 0; i < b.N; i++ {
		eid, err := repo.Enqueue(nil, "q", queue.Element{Body: []byte("x")}, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		eids[i] = eid
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		killed, err := repo.KillElement(eids[i])
		if err != nil || !killed {
			b.Fatalf("kill %d: %v %v", eids[i], killed, err)
		}
	}
}

// --- E12: local vs distributed element move ---

func BenchmarkE12_LocalMove1PC(b *testing.B) {
	repo := benchRepo(b)
	mustQueue(b, repo, queue.QueueConfig{Name: "in"})
	mustQueue(b, repo, queue.QueueConfig{Name: "out"})
	if _, err := repo.Enqueue(nil, "in", queue.Element{Body: []byte("m")}, "", nil); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	from, to := "in", "out"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := repo.Begin()
		el, err := repo.Dequeue(ctx, t, from, "", queue.DequeueOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := repo.Enqueue(t, to, el, "", nil); err != nil {
			b.Fatal(err)
		}
		if err := t.Commit(); err != nil {
			b.Fatal(err)
		}
		from, to = to, from
	}
}

func BenchmarkE12_DistributedMove2PC(b *testing.B) {
	dir := b.TempDir()
	repoA, _, err := queue.Open(filepath.Join(dir, "a"), queue.Options{NoFsync: true, Name: "a"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { repoA.Close() })
	repoB, _, err := queue.Open(filepath.Join(dir, "b"), queue.Options{NoFsync: true, Name: "b"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { repoB.Close() })
	coord, err := tpc.OpenCoordinator("bench", filepath.Join(dir, "c"), true)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { coord.Close() })
	if err := repoA.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		b.Fatal(err)
	}
	if err := repoB.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		b.Fatal(err)
	}
	if _, err := repoA.Enqueue(nil, "q", queue.Element{Body: []byte("m")}, "", nil); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	src, dst := repoA, repoB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tS := src.Begin()
		tD := dst.Begin()
		el, err := src.Dequeue(ctx, tS, "q", "", queue.DequeueOpts{})
		if err != nil {
			b.Fatal(err)
		}
		el.EID = 0
		if _, err := dst.Enqueue(tD, "q", el, "", nil); err != nil {
			b.Fatal(err)
		}
		g := coord.Begin()
		g.Enlist(&tpc.LocalBranch{Label: "s", Txn: tS})
		g.Enlist(&tpc.LocalBranch{Label: "d", Txn: tD})
		if err := g.Commit(); err != nil {
			b.Fatal(err)
		}
		src, dst = dst, src
	}
}

// --- E13/E15: replication commit-rule cost ---

// benchmarkE13Commit measures the per-commit price of each replication
// commit rule against the same in-process standby: what a durable
// enqueue costs unreplicated, with fire-and-forget async shipping, and
// with the sync rule that withholds the ack until the standby has the
// bytes (BENCH_failover.json).
func benchmarkE13Commit(b *testing.B, mode replica.Mode, replicated bool) {
	dir := b.TempDir()
	opts := queue.Options{NoFsync: true}
	if replicated {
		rcv, err := replica.NewReceiver(b.TempDir(), replica.ReceiverOptions{NoFsync: true})
		if err != nil {
			b.Fatal(err)
		}
		tr := replica.TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
			return rcv.Apply(req), nil
		})
		snd, err := replica.NewSender(dir, tr, replica.SenderOptions{Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		opts.WALGate = snd.Gate
		if mode == replica.ModeAsync || mode == replica.ModeSemiSync {
			ctx, cancel := context.WithCancel(context.Background())
			b.Cleanup(cancel)
			go snd.Run(ctx, 5*time.Millisecond)
		}
	}
	repo, _, err := queue.Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { repo.Close() })
	mustQueue(b, repo, queue.QueueConfig{Name: "q"})
	body := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: body}, "", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13_CommitUnreplicated(b *testing.B) { benchmarkE13Commit(b, replica.ModeAsync, false) }
func BenchmarkE13_CommitAsyncRepl(b *testing.B)    { benchmarkE13Commit(b, replica.ModeAsync, true) }
func BenchmarkE13_CommitSemiSyncRepl(b *testing.B) { benchmarkE13Commit(b, replica.ModeSemiSync, true) }
func BenchmarkE13_CommitSyncRepl(b *testing.B)     { benchmarkE13Commit(b, replica.ModeSync, true) }
